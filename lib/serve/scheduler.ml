module Platform = Tdo_runtime.Platform
module Flow = Tdo_cim.Flow
module Interp = Tdo_lang.Interp
module Kernels = Tdo_polybench.Kernels
module Mat = Tdo_linalg.Mat
module Pool = Tdo_util.Pool
module Time_base = Tdo_sim.Time_base
module Backend = Tdo_backend.Backend
module Offload = Tdo_tactics.Offload
module Cost_model = Tdo_tune.Cost_model

type recovery = { max_attempts : int; quarantine_after : int }

let default_recovery = { max_attempts = 3; quarantine_after = 2 }

type config = {
  devices : int;
  fleet : Backend.profile list option;
  platform_config : Platform.config;
  options : Flow.options;
  cache_capacity : int;
  queue_capacity : int;
  batching : bool;
  max_batch : int;
  parallel : bool;
  dispatch_overhead_ps : int;
  cpu_ps_per_mac : int;
  convert_queue_threshold : int;
  revert_idle_ps : int;
  wear_bias_ps_per_byte : float;
  ignore_deadlines : bool;
  recovery : recovery;
  device_seed : int;
  on_device_create : (Device.t -> unit) option;
  tuning : Tdo_tune.Db.t option;
  admission : Admission.policy option;
  calibrate_after : int option;
  on_record : (Telemetry.record -> unit) option;
  graphs : (string * Kernels.benchmark) list;
  graph_residency : bool;
}

let default_config =
  {
    devices = 4;
    fleet = None;
    platform_config = Platform.default_config;
    options = Flow.o3_loop_tactics;
    cache_capacity = 64;
    queue_capacity = 256;
    batching = true;
    max_batch = 8;
    parallel = true;
    dispatch_overhead_ps = 5 * Time_base.ps_per_us;
    (* ~3 VFP cycles per MAC at the A7's 1.2 GHz *)
    cpu_ps_per_mac = 2500;
    convert_queue_threshold = 2;
    revert_idle_ps = 200 * Time_base.ps_per_us;
    wear_bias_ps_per_byte = 0.05;
    ignore_deadlines = false;
    recovery = default_recovery;
    device_seed = 0;
    on_device_create = None;
    tuning = None;
    admission = None;
    calibrate_after = None;
    on_record = None;
    graphs = [];
    graph_residency = true;
  }

let golden_config ?(profile = Backend.pcm) c =
  {
    c with
    devices = 1;
    (* the oracle serves everything on one always-compute device of the
       class under test: a dual profile is pinned to its compute role so
       conversion policy cannot perturb the reference *)
    fleet = Some [ { profile with Backend.dual_mode = false } ];
    batching = false;
    parallel = false;
    queue_capacity = 0;
    ignore_deadlines = true;
    (* the oracle device is pristine: no injected faults *)
    on_device_create = None;
    (* the oracle serves every request with the prior cost model, so
       admission, online calibration and live observation cannot change
       what it computes *)
    admission = None;
    calibrate_after = None;
    on_record = None;
    (* the oracle re-programs every request from scratch: a divergence
       of zero against it is the proof that weight residency changed
       nothing but the programming traffic *)
    graph_residency = false;
  }

type device_report = {
  dev_id : int;
  dev_profile : string;
  dev_class : string;
  dev_wear : Device.wear;
  dev_served : int;
  dev_energy_j : float;
  dev_conversions : int * int;  (** (to compute, to memory) *)
  dev_displaced_bytes : float;  (** memory-role traffic forgone while drafted *)
}

type report = {
  trace : Trace.t;
  config : config;
  telemetry : Telemetry.t;
  cache : Kernel_cache.stats;
  devices : device_report list;
  quarantined : int list;
  makespan_ps : int;
  wall_s : float;
  calibrations : (string * int * float) list;
      (** (class, samples fitted over, mean relative error) per online
          cost-model calibration that was adopted *)
}

(* ---------- output checksums ---------- *)

let checksum_of_mats mats =
  let b = Buffer.create 256 in
  List.iter
    (fun m ->
      Buffer.add_string b (Printf.sprintf "%dx%d;" (Mat.rows m) (Mat.cols m));
      Mat.iteri ~f:(fun _ _ v -> Buffer.add_int64_le b (Int64.bits_of_float v)) m)
    mats;
  Digest.to_hex (Digest.string (Buffer.contents b))

let output_checksum = checksum_of_mats

(* ---------- replay ---------- *)

(* Intrusive doubly-linked FIFO. The golden oracles replay the open-loop
   load traces with an unbounded queue, so the backlog under the 6x
   overload pattern reaches ~10^5 items; a [list ref] queue made every
   append, length and removal O(n) and the whole oracle replay
   quadratic. Here push/pop/remove/length are O(1); traversals cost one
   pass per scan. *)
module Dll = struct
  type 'a node = {
    value : 'a;
    mutable prev : 'a node option;
    mutable next : 'a node option;
    mutable linked : bool;
  }

  type 'a t = {
    mutable first : 'a node option;
    mutable last : 'a node option;
    mutable len : int;
  }

  let create () = { first = None; last = None; len = 0 }
  let length t = t.len
  let is_empty t = t.len = 0
  let first t = t.first

  let push_back t v =
    let n = { value = v; prev = t.last; next = None; linked = true } in
    (match t.last with Some l -> l.next <- Some n | None -> t.first <- Some n);
    t.last <- Some n;
    t.len <- t.len + 1

  let push_front t v =
    let n = { value = v; prev = None; next = t.first; linked = true } in
    (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
    t.first <- Some n;
    t.len <- t.len + 1

  let remove t n =
    if n.linked then begin
      (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
      (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
      n.prev <- None;
      n.next <- None;
      n.linked <- false;
      t.len <- t.len - 1
    end

  (* first node whose value satisfies [p], in queue order *)
  let find_node t p =
    let rec go = function
      | None -> None
      | Some n -> if p n.value then Some n else go n.next
    in
    go t.first

  let to_list t =
    let rec go acc = function
      | None -> List.rev acc
      | Some n -> go (n.value :: acc) n.next
    in
    go [] t.first

  let clear t =
    let rec unlink = function
      | None -> ()
      | Some n ->
          let next = n.next in
          n.prev <- None;
          n.next <- None;
          n.linked <- false;
          unlink next
    in
    unlink t.first;
    t.first <- None;
    t.last <- None;
    t.len <- 0
end

type queued = {
  req : Trace.request;
  depth : int;  (** queue depth seen at admission *)
  attempts : int;  (** device attempts discarded after a detected corruption *)
  tried : int list;  (** devices that returned a corrupt result for this request *)
}

type batch = {
  dev : Device.t;
  batch_id : int;
  start_ps : int;  (** dispatch time + launch overhead + any conversion charge *)
  cache_hit : bool;
  bench : Kernels.benchmark;
  entry : Kernel_cache.entry;
  residency : string option;
      (** graph-scope residency key — (compiled entry, tenant) — every
          item of the batch runs under; graph batches are single-tenant
          by construction *)
  items : queued list;
}

(* What one batch item produced. A corrupt attempt consumed device time
   but its outputs are discarded; the scheduler (not the worker) decides
   retry / quarantine / host degradation, because those touch shared
   pool state. *)
type exec_result =
  | Recorded of Telemetry.record
  | Corrupt of {
      item : queued;
      dev_id : int;
      service_ps : int;
      fault : (int * (int * int * int * int)) option;
    }

(* Runs on a worker domain: touches only its own device, the immutable
   compiled entry, and per-request data derived from the seed. *)
let execute_batch (b : batch) =
  let profile_name = Some (Device.profile b.dev).Backend.name in
  let cursor = ref b.start_ps in
  let results =
    List.map
      (fun item ->
        let r = item.req in
        let args, readback = b.bench.Kernels.make_args ~n:r.Trace.n ~seed:r.Trace.seed in
        let exec () =
          match Device.device_class b.dev with
          | Backend.Host_blas ->
              Device.run_host b.dev ~ast:b.entry.Kernel_cache.ast ~args
                ~macs:(b.bench.Kernels.macs ~n:r.Trace.n)
          | Backend.Pcm_crossbar | Backend.Digital_tile ->
              Device.run ?residency:b.residency b.dev b.entry.Kernel_cache.compiled ~args
        in
        match exec () with
        | stats ->
            let start = !cursor in
            cursor := !cursor + stats.Device.service_ps;
            if stats.Device.abft_mismatches > 0 then
              Corrupt
                {
                  item;
                  dev_id = Device.id b.dev;
                  service_ps = stats.Device.service_ps;
                  fault = stats.Device.abft_fault;
                }
            else
              Recorded
                {
                  Telemetry.request = r;
                  outcome = Telemetry.Completed;
                  device = Some (Device.id b.dev);
                  profile = profile_name;
                  batch = Some b.batch_id;
                  cache_hit = b.cache_hit;
                  queue_depth = item.depth;
                  start_ps = start;
                  finish_ps = !cursor;
                  service_ps = stats.Device.service_ps;
                  retries = item.attempts;
                  tuned = b.entry.Kernel_cache.tuned;
                  write_bytes = stats.Device.write_bytes;
                  checksum = Some (checksum_of_mats (readback ()));
                }
        | exception Tdo_ir.Exec.Exec_error msg ->
            Recorded
              {
                Telemetry.request = r;
                outcome = Telemetry.Failed msg;
                device = Some (Device.id b.dev);
                profile = profile_name;
                batch = Some b.batch_id;
                cache_hit = b.cache_hit;
                queue_depth = item.depth;
                start_ps = !cursor;
                finish_ps = !cursor;
                service_ps = 0;
                retries = item.attempts;
                tuned = b.entry.Kernel_cache.tuned;
                write_bytes = 0;
                checksum = None;
              })
      b.items
  in
  Device.set_available_ps b.dev !cursor;
  results

let replay ?(config = default_config) (trace : Trace.t) =
  let fleet =
    match config.fleet with
    | Some (_ :: _ as profiles) -> Array.of_list profiles
    | Some [] -> invalid_arg "Scheduler.replay: empty fleet"
    | None ->
        if config.devices < 1 then invalid_arg "Scheduler.replay: need at least one device";
        Array.make config.devices Backend.pcm
  in
  let ndev = Array.length fleet in
  if config.max_batch < 1 then invalid_arg "Scheduler.replay: max_batch must be >= 1";
  if config.recovery.max_attempts < 1 then
    invalid_arg "Scheduler.replay: recovery.max_attempts must be >= 1";
  let t0 = Unix.gettimeofday () in
  let xbar = config.platform_config.Platform.engine.Tdo_cimacc.Micro_engine.xbar in
  let geometry = (xbar.Tdo_pcm.Crossbar.rows, xbar.Tdo_pcm.Crossbar.cols) in
  (* one clamp geometry per class present in the fleet (the class
     profiles reshape latencies, not the crossbar footprint) *)
  let classes =
    Array.to_list fleet
    |> List.map (fun (p : Backend.profile) -> p.Backend.cls)
    |> List.sort_uniq compare
  in
  let devices =
    Array.init ndev (fun id ->
        let d =
          Device.create ~platform_config:config.platform_config
            ~seed:(config.device_seed + id) ~backend:fleet.(id) ~id ()
        in
        (match config.on_device_create with Some f -> f d | None -> ());
        d)
  in
  (* Resolve a serving kernel name: registered graph programs first,
     then the PolyBench suite. *)
  let find_bench name =
    match List.assoc_opt name config.graphs with
    | Some bench -> Ok bench
    | None -> Kernels.find name
  in
  let is_graph_kernel name = List.mem_assoc name config.graphs in
  (* Residency key a run of [entry_key] for [tenant] latches: the
     compiled entry (digest + options + class) scopes it to the model's
     exact program, the tenant scopes it as isolation policy. *)
  let residency_key ~entry_key ~tenant = entry_key ^ "#t" ^ string_of_int tenant in
  (* A pinned claim must not outlive the compiled entry backing it:
     eviction drops any device residency derived from the evicted key. *)
  let cache =
    Kernel_cache.create ~capacity:config.cache_capacity ~options:config.options
      ?tuning:config.tuning
      ~geometries:(List.map (fun cls -> (cls, geometry)) classes)
      ~on_evict:(fun key ->
        Array.iter
          (fun d ->
            match Device.resident d with
            | Some rk when String.length rk >= String.length key
                           && String.sub rk 0 (String.length key) = key ->
                Device.clear_resident d
            | _ -> ())
          devices)
      ()
  in
  let corruptions = Array.make ndev 0 in
  let telemetry = Telemetry.create ?observer:config.on_record () in
  let admission = Option.map Admission.create config.admission in
  let arrivals = ref trace.Trace.requests in
  let trace_has_deadlines =
    List.exists (fun (r : Trace.request) -> r.Trace.deadline_ps <> None) trace.Trace.requests
  in
  let queue : queued Dll.t = Dll.create () in
  let now = ref 0 in
  let batch_counter = ref 0 in
  let record = Telemetry.record telemetry in
  let record_failed (r : Trace.request) depth msg =
    record
      {
        Telemetry.request = r;
        outcome = Telemetry.Failed msg;
        device = None;
        profile = None;
        batch = None;
        cache_hit = false;
        queue_depth = depth;
        start_ps = !now;
        finish_ps = !now;
        service_ps = 0;
        retries = 0;
        tuned = false;
        write_bytes = 0;
        checksum = None;
      }
  in

  let record_dropped (r : Trace.request) outcome =
    record
      {
        Telemetry.request = r;
        outcome;
        device = None;
        profile = None;
        batch = None;
        cache_hit = false;
        queue_depth = Dll.length queue;
        start_ps = r.Trace.arrival_ps;
        finish_ps = r.Trace.arrival_ps;
        service_ps = 0;
        retries = 0;
        tuned = false;
        write_bytes = 0;
        checksum = None;
      }
  in
  (* Admission verdict for one arrival: the policy's SLO-tiered load
     shedding and per-tenant token buckets first (both judged at the
     arrival timestamp), then the hard queue bound — so under overload
     best-effort traffic is shed well before interactive traffic ever
     sees a [Rejected_overloaded]. *)
  let admission_verdict (r : Trace.request) =
    match admission with
    | None -> Admission.Admit
    | Some adm ->
        Admission.admit adm ~now_ps:r.Trace.arrival_ps ~queue_len:(Dll.length queue)
          ~capacity:config.queue_capacity r
  in
  let admit_due () =
    let rec go () =
      match !arrivals with
      | (r : Trace.request) :: rest when r.Trace.arrival_ps <= !now ->
          arrivals := rest;
          (match admission_verdict r with
          | Admission.Shed_rate ->
              record_dropped r (Telemetry.Shed Telemetry.Rate_limited)
          | Admission.Shed_load -> record_dropped r (Telemetry.Shed Telemetry.Load_shed)
          | Admission.Admit ->
              if config.queue_capacity > 0 && Dll.length queue >= config.queue_capacity
              then record_dropped r Telemetry.Rejected_overloaded
              else
                Dll.push_back queue
                  { req = r; depth = Dll.length queue; attempts = 0; tried = [] });
          Telemetry.sample_queue_depth telemetry ~at_ps:r.Trace.arrival_ps
            ~depth:(Dll.length queue);
          go ()
      | _ -> ()
    in
    go ()
  in

  (* Host-interpreter execution: deadline degradation ([Cpu_fallback])
     and the terminal recovery policy ([Recovered_host]) share this
     path — exact results, modelled latency. *)
  let run_fallback ?(outcome = Telemetry.Cpu_fallback) ?(retries = 0) ((r : Trace.request), depth)
      =
    match find_bench r.Trace.kernel with
    | Error msg -> record_failed r depth msg
    | Ok bench -> (
        match
          let ast = Tdo_lang.Parser.parse_func (bench.Kernels.source ~n:r.Trace.n) in
          Tdo_lang.Typecheck.check_func ast;
          let args, readback = bench.Kernels.make_args ~n:r.Trace.n ~seed:r.Trace.seed in
          Interp.run ast ~args;
          (readback (), bench.Kernels.macs ~n:r.Trace.n)
        with
        | mats, macs ->
            let service_ps = config.cpu_ps_per_mac * macs in
            record
              {
                Telemetry.request = r;
                outcome;
                device = None;
                profile = None;
                batch = None;
                cache_hit = false;
                queue_depth = depth;
                start_ps = !now;
                finish_ps = !now + service_ps;
                service_ps;
                retries;
                tuned = false;
                write_bytes = 0;
                checksum = Some (checksum_of_mats mats);
              }
        | exception e -> record_failed r depth (Printexc.to_string e))
  in

  let cull_expired () =
    if (not config.ignore_deadlines) && trace_has_deadlines then
      let rec go node =
        match node with
        | None -> ()
        | Some n ->
            let next = n.Dll.next in
            let it = n.Dll.value in
            (match it.req.Trace.deadline_ps with
            | Some d when !now > it.req.Trace.arrival_ps + d ->
                Dll.remove queue n;
                run_fallback ~retries:it.attempts (it.req, it.depth)
            | _ -> ());
            go next
      in
      go (Dll.first queue)
  in

  let pop_batch ~skip ~dev_id =
    (* The first queued item this device may take: one it has not
       already corrupted and that placement does not defer off this
       device ([skip], e.g. weight-residency items waiting for the
       device that holds their model). Skipped items stay queued, in
       order. *)
    let rec find node =
      match node with
      | None -> None
      | Some n when List.mem dev_id n.Dll.value.tried || skip n.Dll.value ->
          find n.Dll.next
      | Some n -> Some n
    in
    match find (Dll.first queue) with
    | None -> None
    | Some n ->
        let item = n.Dll.value in
        Dll.remove queue n;
        if item.attempts > 0 || (not config.batching) || config.max_batch <= 1 then
          (* retried work is dispatched alone: its timing must not be
             entangled with fresh requests *)
          Some [ item ]
        else begin
          (* coalesce fresh queued requests sharing (kernel, n): one
             compile, one launch, back-to-back execution on one device.
             Items skipped above all carry a non-empty [tried], so
             scanning from the head selects the same mates as scanning
             only past the popped item. *)
          let taken = ref [ item ] in
          let count = ref 1 in
          let rec scan node =
            if !count < config.max_batch then
              match node with
              | None -> ()
              | Some m ->
                  let next = m.Dll.next in
                  let it = m.Dll.value in
                  if
                    it.attempts = 0 && it.tried = []
                    && it.req.Trace.kernel = item.req.Trace.kernel
                    && it.req.Trace.n = item.req.Trace.n
                    (* graph batches stay single-tenant: one residency
                       key per batch, and cross-tenant weight reuse is
                       never even formable *)
                    && ((not (is_graph_kernel item.req.Trace.kernel))
                       || it.req.Trace.tenant = item.req.Trace.tenant)
                  then begin
                    Dll.remove queue m;
                    taken := it :: !taken;
                    incr count
                  end;
                  scan next
          in
          scan (Dll.first queue);
          Some (List.rev !taken)
        end
  in

  (* A fleet with no always-compute device (e.g. all dual-mode tiles,
     or every plain device quarantined) must still be able to draft a
     dual tile, or light load would never be served. *)
  let compute_role_exists () =
    Array.exists
      (fun d ->
        (not (Device.is_quarantined d))
        && not (Device.profile d).Backend.dual_mode)
      devices
  in
  let dual_draft_allowed () =
    Dll.length queue > config.convert_queue_threshold || not (compute_role_exists ())
  in

  (* Cost-based placement: predicted service time of one request of
     this (kernel, size) on each device class, from the class's
     cost-model coefficient set over the offload plan of the entry the
     class would actually run (tuned configurations included). Memoised
     — the compile behind a first estimate is shared with dispatch
     through the kernel cache. *)
  let est_memo : (string * int * string, float * float * string) Hashtbl.t =
    Hashtbl.create 64
  in
  (* Online calibration: measured (plan, cycles) samples per device
     class, fitted once a class has seen [calibrate_after] completed
     requests. The fit is adopted only when it beats the hand-priced
     prior on its own samples (never worse), and the placement memo for
     the class is dropped so later estimates use the calibrated
     coefficients. Samples accumulate in wave-fold order, which is
     fixed before execution — calibration preserves the
     parallel==sequential determinism property. *)
  let calib_samples : (Backend.device_class, Cost_model.sample list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let calibrated : (Backend.device_class, Cost_model.t) Hashtbl.t = Hashtbl.create 4 in
  let calib_done : (Backend.device_class, unit) Hashtbl.t = Hashtbl.create 4 in
  let calib_log = ref [] in
  let model_for cls =
    match Hashtbl.find_opt calibrated cls with
    | Some m -> m
    | None -> Cost_model.uncalibrated_for cls
  in
  let note_sample (b : batch) plan (r : Telemetry.record) =
    if
      config.calibrate_after <> None
      && r.Telemetry.outcome = Telemetry.Completed
      && r.Telemetry.service_ps > 0
    then begin
      let cls = Device.device_class b.dev in
      if not (Hashtbl.mem calib_done cls) then begin
        let samples =
          match Hashtbl.find_opt calib_samples cls with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.add calib_samples cls l;
              l
        in
        samples :=
          {
            Cost_model.plan = Lazy.force plan;
            cycles = float_of_int r.Telemetry.service_ps /. Backend.ps_per_cycle;
          }
          :: !samples
      end
    end
  in
  let maybe_calibrate () =
    match config.calibrate_after with
    | None -> ()
    | Some threshold ->
        Hashtbl.iter
          (fun cls samples ->
            if (not (Hashtbl.mem calib_done cls)) && List.length !samples >= threshold then begin
              Hashtbl.add calib_done cls ();
              let fitted, err = Cost_model.calibrate !samples in
              let prior_err =
                Cost_model.mean_relative_error (Cost_model.uncalibrated_for cls) !samples
              in
              if err <= prior_err then begin
                Hashtbl.replace calibrated cls fitted;
                let name = Backend.class_name cls in
                calib_log := (name, List.length !samples, err) :: !calib_log;
                Hashtbl.filter_map_inplace
                  (fun (_, _, cls_name) v -> if cls_name = name then None else Some v)
                  est_memo
              end
            end)
          calib_samples
  in
  (* [(cold_ps, resident_ps, entry_key)]: predicted service from
     scratch, predicted service with the weight tiles already pinned
     (zero programming traffic in the plan), and the cache key the
     class's entry compiles to — what residency keys derive from. *)
  let estimate ~cls (bench : Kernels.benchmark) ~n =
    let key = (bench.Kernels.name, n, Backend.class_name cls) in
    match Hashtbl.find_opt est_memo key with
    | Some v -> v
    | None ->
        let v =
          match
            let entry = Kernel_cache.find_or_compile cache ~cls (bench.Kernels.source ~n) in
            let plan =
              Offload.plan entry.Kernel_cache.options.Flow.tactics
                entry.Kernel_cache.compiled.Flow.func
            in
            let model = model_for cls in
            ( Cost_model.predict_cycles model plan,
              Cost_model.predict_resident_cycles model plan,
              entry.Kernel_cache.key )
          with
          | cold, resident, entry_key ->
              (cold *. Backend.ps_per_cycle, resident *. Backend.ps_per_cycle, entry_key)
          | exception _ ->
              (* the class cannot compile this kernel: never preferred,
                 but still placeable as a last resort so the compile
                 error surfaces through the normal failure record *)
              (Float.max_float, Float.max_float, "")
        in
        Hashtbl.add est_memo key v;
        v
  in
  (* Lower is better: predicted service, plus the conversion charge if
     the device must first be drafted out of its memory role, plus a
     small write-pressure bias on classes that wear (endurance has a
     price; classes that do not wear never pay it). Ties break to the
     least-written, lowest-id device — the pre-fleet behaviour. A
     device whose pinned weights are resident for this (model, tenant)
     quotes the resident estimate instead: repeat graph traffic sticks
     to the device already holding its weights — which the wear bias
     would otherwise actively steer away from, re-programming a fresh
     tile every few requests. *)
  (* Rendezvous weight of a device for a residency key, in [0, 1):
     FNV-1a over the key and device id. Each key gets its own
     deterministic preference order over the fleet, so when a model's
     resident devices are busy its overflow lands on the same
     secondary devices run after run instead of evicting whichever
     device another model just programmed. *)
  let affinity key dev =
    let h = ref 0x811c9dc5 in
    let feed s =
      String.iter
        (fun ch -> h := (!h lxor Char.code ch) * 0x01000193 land 0x3FFFFFFF)
        s
    in
    feed key;
    feed (string_of_int (Device.id dev));
    float_of_int (!h land 0xFFFFF) /. 1048576.0
  in

  let score dev (bench : Kernels.benchmark) ~n ~tenant =
    let profile = Device.profile dev in
    let cold, resident_est, entry_key = estimate ~cls:profile.Backend.cls bench ~n in
    let est =
      if config.graph_residency && is_graph_kernel bench.Kernels.name && entry_key <> ""
      then begin
        let key = residency_key ~entry_key ~tenant in
        if Device.resident dev = Some key then resident_est
        else
          (* a cold graph placement pays up to one extra programming
             cost, scaled by the rendezvous weight: the key's
             first-choice device is penalty-free, its last choice pays
             the most — a sticky but still cost-aware partition *)
          cold +. (affinity key dev *. Float.max 0.0 (cold -. resident_est))
      end
      else cold
    in
    let conversion =
      if Device.mode dev = Backend.Memory_mode then
        float_of_int profile.Backend.conversion_latency_ps
      else 0.0
    in
    let wear_bias =
      if profile.Backend.wears then
        float_of_int (Device.write_pressure dev) *. config.wear_bias_ps_per_byte
      else 0.0
    in
    (est +. conversion +. wear_bias, Device.write_pressure dev, Device.id dev)
  in

  (* Recovery policy for one corrupt attempt (runs on the scheduler,
     after the wave): count it against the device, quarantine the
     device once it crosses the threshold, then either requeue the
     request for another device or degrade it to the host. *)
  let handle_corrupt ~item ~dev_id ~fault requeue =
    let dev = devices.(dev_id) in
    corruptions.(dev_id) <- corruptions.(dev_id) + 1;
    if corruptions.(dev_id) >= config.recovery.quarantine_after && not (Device.is_quarantined dev)
    then begin
      let rows =
        match fault with Some (_, (row_off, _, nrows, _)) -> (row_off, nrows) | None -> (0, 0)
      in
      Device.quarantine dev ~rows
    end;
    let item = { item with attempts = item.attempts + 1; tried = dev_id :: item.tried } in
    let untried_device_exists =
      Array.exists
        (fun d -> (not (Device.is_quarantined d)) && not (List.mem (Device.id d) item.tried))
        devices
    in
    if item.attempts >= config.recovery.max_attempts || not untried_device_exists then begin
      run_fallback ~outcome:Telemetry.Recovered_host ~retries:item.attempts (item.req, item.depth);
      requeue
    end
    else item :: requeue
  in

  (* Dual-mode release: a drafted tile that has sat idle past the
     hysteresis window with nothing queued hands its capacity back to
     the memory role. *)
  let release_idle_duals () =
    if Dll.is_empty queue then
      Array.iter
        (fun d ->
          if
            (Device.profile d).Backend.dual_mode
            && Device.mode d = Backend.Compute_mode
            && (not (Device.is_quarantined d))
            && Device.available_ps d + config.revert_idle_ps <= !now
          then begin
            let displaced = Device.convert ~at_ps:!now d ~to_compute:false in
            Telemetry.record_conversion ~displaced_bytes:displaced telemetry ~at_ps:!now
              ~device:(Device.id d) ~profile:(Device.profile d).Backend.name
              ~to_compute:false
          end)
        devices
  in

  (* Form batches head-of-queue first: for each placeable item, score
     every eligible free device across the mixed fleet and take the
     cheapest, converting a dual-mode tile if that is what won. Every
     decision (membership, placement, conversions, start times) is
     fixed before execution starts, so the wave's results do not depend
     on how it is run. *)
  let dispatch () =
    let free =
      ref
        (Array.to_list devices
        |> List.filter (fun d ->
               (not (Device.is_quarantined d)) && Device.available_ps d <= !now))
    in
    let prepared = ref [] in
    let progressed = ref true in
    while !progressed do
      progressed := false;
      (* no free device means no queued item is placeable: skip the
         scan entirely instead of walking the whole backlog to learn
         nothing (the oracle's unbounded queue makes that walk hurt) *)
      if !free <> [] then begin
        let eligible item =
          List.filter
            (fun d ->
              (not (List.mem (Device.id d) item.tried))
              && (Device.mode d = Backend.Compute_mode || dual_draft_allowed ()))
            !free
        in
        (* Does [d] already hold this item's model+tenant (under [d]'s
           own class-specific cache key)? *)
        let resident_for item d =
          match find_bench item.req.Trace.kernel with
          | Error _ -> false
          | Ok bench ->
              let _, _, entry_key =
                estimate ~cls:(Device.profile d).Backend.cls bench ~n:item.req.Trace.n
              in
              entry_key <> ""
              && Device.resident d
                 = Some (residency_key ~entry_key ~tenant:item.req.Trace.tenant)
        in
        (* A graph item whose model is resident on a busy device prefers
           waiting for that device over paying a cold programming pass on
           a free one — but only while the wait it has already absorbed
           is smaller than the programming it would save. Bounded, so a
           backlogged resident device cannot starve the item forever. *)
        let worth_waiting item =
          config.graph_residency
          && is_graph_kernel item.req.Trace.kernel
          && Array.exists
               (fun d ->
                 (not (Device.is_quarantined d))
                 && Device.available_ps d > !now
                 && (not (List.mem (Device.id d) item.tried))
                 && resident_for item d
                 &&
                 match find_bench item.req.Trace.kernel with
                 | Error _ -> false
                 | Ok bench ->
                     let cold, resident_est, _ =
                       estimate ~cls:(Device.profile d).Backend.cls bench
                         ~n:item.req.Trace.n
                     in
                     (* wait up to twice the programming it saves: the
                        request breaks even at 1x, and staying put also
                        spares whichever model this device would have
                        evicted its own cold pass later *)
                     float_of_int (!now - item.req.Trace.arrival_ps)
                     < 2.0 *. (cold -. resident_est))
               devices
        in
        (* May this device take this item right now? Deferring items
           only ever shrinks the choice to the devices that hold their
           model; everything else is unrestricted. *)
        let allowed item d = (not (worth_waiting item)) || resident_for item d in
        let placeable item =
          List.exists (allowed item) (eligible item)
        in
        match Dll.find_node queue placeable with
        | None -> ()
        | Some node -> (
          progressed := true;
          let item = node.Dll.value in
          let r0 = item.req in
          match find_bench r0.Trace.kernel with
          | Error msg ->
              (* unknown kernel: no device can help; drop just this item *)
              Dll.remove queue node;
              record_failed r0 item.depth msg
          | Ok bench -> (
              let misses0 = (Kernel_cache.stats cache).Kernel_cache.misses in
              let best =
                List.fold_left
                  (fun acc d ->
                    let s = score d bench ~n:r0.Trace.n ~tenant:r0.Trace.tenant in
                    match acc with
                    | Some (_, s') when s' <= s -> acc
                    | _ -> Some (d, s))
                  None
                  (List.filter (allowed item) (eligible item))
              in
              let dev, _ = Option.get best in
              match
                pop_batch
                  ~skip:(fun it -> not (allowed it dev))
                  ~dev_id:(Device.id dev)
              with
              | None -> assert false (* [item] is poppable by [dev] *)
              | Some items -> (
                  match
                    Kernel_cache.find_or_compile cache ~cls:(Device.device_class dev)
                      (bench.Kernels.source ~n:r0.Trace.n)
                  with
                  | entry ->
                      let cache_hit =
                        (Kernel_cache.stats cache).Kernel_cache.misses = misses0
                      in
                      let conversion_ps =
                        if Device.mode dev = Backend.Memory_mode then begin
                          let (_ : float) = Device.convert ~at_ps:!now dev ~to_compute:true in
                          Telemetry.record_conversion telemetry ~at_ps:!now
                            ~device:(Device.id dev)
                            ~profile:(Device.profile dev).Backend.name ~to_compute:true;
                          (Device.profile dev).Backend.conversion_latency_ps
                        end
                        else 0
                      in
                      let residency =
                        if
                          config.graph_residency
                          && is_graph_kernel bench.Kernels.name
                          && Device.device_class dev <> Backend.Host_blas
                        then
                          Some
                            (residency_key ~entry_key:entry.Kernel_cache.key
                               ~tenant:r0.Trace.tenant)
                        else None
                      in
                      let batch_id = !batch_counter in
                      incr batch_counter;
                      free := List.filter (fun d -> Device.id d <> Device.id dev) !free;
                      prepared :=
                        {
                          dev;
                          batch_id;
                          start_ps = !now + config.dispatch_overhead_ps + conversion_ps;
                          cache_hit;
                          bench;
                          entry;
                          residency;
                          items;
                        }
                        :: !prepared
                  | exception e ->
                      List.iter
                        (fun it -> record_failed it.req it.depth (Printexc.to_string e))
                        items)))
      end
    done;
    match List.rev !prepared with
    | [] -> false
    | waves ->
        let results =
          if config.parallel && List.length waves > 1 then
            Pool.parallel_map execute_batch waves
          else List.map execute_batch waves
        in
        let requeue =
          List.fold_left2
            (fun acc (b : batch) rs ->
              let plan =
                lazy
                  (Offload.plan b.entry.Kernel_cache.options.Flow.tactics
                     b.entry.Kernel_cache.compiled.Flow.func)
              in
              List.fold_left
                (fun acc -> function
                  | Recorded r ->
                      record r;
                      (* a warm resident run skipped its programming
                         traffic, so its measured cycles would poison a
                         calibration fitted against the full plan *)
                      if b.residency = None then note_sample b plan r;
                      acc
                  | Corrupt { item; dev_id; service_ps = _; fault } ->
                      handle_corrupt ~item ~dev_id ~fault acc)
                acc rs)
            [] waves results
        in
        maybe_calibrate ();
        (* retried work goes back to the head of the queue so recovery
           runs before newer arrivals *)
        List.iter (fun it -> Dll.push_front queue it) requeue;
        true
  in

  while !arrivals <> [] || not (Dll.is_empty queue) do
    (* release before admitting: a revert is decided by the idle
       interval leading up to [now], not by whatever arrives at that
       same instant *)
    release_idle_duals ();
    admit_due ();
    cull_expired ();
    if not (dispatch ()) then begin
      let next_arrival =
        match !arrivals with [] -> max_int | r :: _ -> r.Trace.arrival_ps
      in
      let next_free =
        Array.fold_left
          (fun acc d ->
            let a = Device.available_ps d in
            if a > !now then min acc a else acc)
          max_int devices
      in
      let next =
        if Dll.is_empty queue then next_arrival else min next_arrival next_free
      in
      if next = max_int && not (Dll.is_empty queue) then begin
        (* dead end: every queued item has exhausted the usable pool
           (e.g. all devices quarantined) — drain it to the host so the
           loop terminates *)
        let stuck = Dll.to_list queue in
        Dll.clear queue;
        List.iter
          (fun it ->
            run_fallback ~outcome:Telemetry.Recovered_host ~retries:it.attempts
              (it.req, it.depth))
          stuck
      end
      else
        (* [next = max_int] can only follow a dispatch step that consumed
           the queue through failure records; nudge the clock so the loop
           re-checks termination. *)
        now := if next = max_int then !now + 1 else max next (!now + 1)
    end
  done;

  let makespan_ps =
    List.fold_left (fun acc r -> max acc r.Telemetry.finish_ps) 0 (Telemetry.records telemetry)
  in
  (* a tile still drafted at the end of the run has displaced memory
     traffic right up to the makespan — close the interval so the
     report's displaced-bytes figure covers the whole run *)
  Array.iter
    (fun d -> ignore (Device.finalize_displacement d ~at_ps:makespan_ps : float))
    devices;
  {
    trace;
    config;
    telemetry;
    cache = Kernel_cache.stats cache;
    devices =
      Array.to_list devices
      |> List.map (fun d ->
             {
               dev_id = Device.id d;
               dev_profile = (Device.profile d).Backend.name;
               dev_class = Backend.class_name (Device.device_class d);
               dev_wear = Device.wear d;
               dev_served = Device.requests_served d;
               dev_energy_j = Device.energy_j d;
               dev_conversions = Device.conversions d;
               dev_displaced_bytes = Device.displaced_mem_bytes d;
             });
    quarantined =
      Array.to_list devices
      |> List.filter (fun d -> Device.is_quarantined d)
      |> List.map Device.id;
    makespan_ps;
    wall_s = Unix.gettimeofday () -. t0;
    calibrations = List.rev !calib_log;
  }

(* ---------- report accessors ---------- *)

let completed r = Telemetry.count r.telemetry Telemetry.Completed
let fallbacks r = Telemetry.count r.telemetry Telemetry.Cpu_fallback
let recovered r = Telemetry.count r.telemetry Telemetry.Recovered_host
let rejections r = Telemetry.count r.telemetry Telemetry.Rejected_overloaded
let failures r = Telemetry.count r.telemetry (Telemetry.Failed "")
let detected_corruptions r = (Telemetry.summary r.telemetry).Telemetry.detected_corruptions

let cache_hit_rate r =
  let c = r.cache in
  let lookups = c.Kernel_cache.hits + c.Kernel_cache.misses in
  if lookups = 0 then 0.0 else float_of_int c.Kernel_cache.hits /. float_of_int lookups

(* The compute class behind a completed record: what decides whether
   two checksums are comparable. Analog and digital tiles share the
   quantised CIM numeric path but class-keyed tuned geometries may tile
   the quantisation differently, and the host computes in full
   precision — so only same-class results are expected bit-identical. *)
let record_class (r : Telemetry.record) =
  match r.Telemetry.profile with
  | None -> None
  | Some name -> (
      match Backend.of_name name with
      | Ok p -> Some p.Backend.cls
      | Error _ -> None)

let divergence a b =
  let of_b = Hashtbl.create 256 in
  List.iter
    (fun (r : Telemetry.record) ->
      match (r.Telemetry.outcome, r.Telemetry.checksum, record_class r) with
      | Telemetry.Completed, Some cs, Some cls ->
          Hashtbl.replace of_b r.Telemetry.request.Trace.id (cs, cls)
      | _ -> ())
    (Telemetry.records b.telemetry);
  List.fold_left
    (fun acc (r : Telemetry.record) ->
      match (r.Telemetry.outcome, r.Telemetry.checksum, record_class r) with
      | Telemetry.Completed, Some cs, Some cls -> (
          match Hashtbl.find_opt of_b r.Telemetry.request.Trace.id with
          | Some (cs', cls') when cls' = cls && cs' <> cs -> acc + 1
          | Some _ | None -> acc)
      | _ -> acc)
    0
    (Telemetry.records a.telemetry)
