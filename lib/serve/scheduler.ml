module Platform = Tdo_runtime.Platform
module Flow = Tdo_cim.Flow
module Interp = Tdo_lang.Interp
module Kernels = Tdo_polybench.Kernels
module Mat = Tdo_linalg.Mat
module Pool = Tdo_util.Pool
module Time_base = Tdo_sim.Time_base

type recovery = { max_attempts : int; quarantine_after : int }

let default_recovery = { max_attempts = 3; quarantine_after = 2 }

type config = {
  devices : int;
  platform_config : Platform.config;
  options : Flow.options;
  cache_capacity : int;
  queue_capacity : int;
  batching : bool;
  max_batch : int;
  parallel : bool;
  dispatch_overhead_ps : int;
  cpu_ps_per_mac : int;
  ignore_deadlines : bool;
  recovery : recovery;
  device_seed : int;
  on_device_create : (Device.t -> unit) option;
  tuning : Tdo_tune.Db.t option;
}

let default_config =
  {
    devices = 4;
    platform_config = Platform.default_config;
    options = Flow.o3_loop_tactics;
    cache_capacity = 64;
    queue_capacity = 256;
    batching = true;
    max_batch = 8;
    parallel = true;
    dispatch_overhead_ps = 5 * Time_base.ps_per_us;
    (* ~3 VFP cycles per MAC at the A7's 1.2 GHz *)
    cpu_ps_per_mac = 2500;
    ignore_deadlines = false;
    recovery = default_recovery;
    device_seed = 0;
    on_device_create = None;
    tuning = None;
  }

let golden_config c =
  {
    c with
    devices = 1;
    batching = false;
    parallel = false;
    queue_capacity = 0;
    ignore_deadlines = true;
    (* the oracle device is pristine: no injected faults *)
    on_device_create = None;
  }

type report = {
  trace : Trace.t;
  config : config;
  telemetry : Telemetry.t;
  cache : Kernel_cache.stats;
  devices : (int * Device.wear * int) list;
  quarantined : int list;
  makespan_ps : int;
  wall_s : float;
}

(* ---------- output checksums ---------- *)

let checksum_of_mats mats =
  let b = Buffer.create 256 in
  List.iter
    (fun m ->
      Buffer.add_string b (Printf.sprintf "%dx%d;" (Mat.rows m) (Mat.cols m));
      Mat.iteri ~f:(fun _ _ v -> Buffer.add_int64_le b (Int64.bits_of_float v)) m)
    mats;
  Digest.to_hex (Digest.string (Buffer.contents b))

let output_checksum = checksum_of_mats

(* ---------- replay ---------- *)

type queued = {
  req : Trace.request;
  depth : int;  (** queue depth seen at admission *)
  attempts : int;  (** device attempts discarded after a detected corruption *)
  tried : int list;  (** devices that returned a corrupt result for this request *)
}

type batch = {
  dev : Device.t;
  batch_id : int;
  start_ps : int;  (** dispatch time + launch overhead *)
  cache_hit : bool;
  bench : Kernels.benchmark;
  entry : Kernel_cache.entry;
  items : queued list;
}

(* What one batch item produced. A corrupt attempt consumed device time
   but its outputs are discarded; the scheduler (not the worker) decides
   retry / quarantine / host degradation, because those touch shared
   pool state. *)
type exec_result =
  | Recorded of Telemetry.record
  | Corrupt of {
      item : queued;
      dev_id : int;
      service_ps : int;
      fault : (int * (int * int * int * int)) option;
    }

(* Runs on a worker domain: touches only its own device, the immutable
   compiled entry, and per-request data derived from the seed. *)
let execute_batch (b : batch) =
  let cursor = ref b.start_ps in
  let results =
    List.map
      (fun item ->
        let r = item.req in
        let args, readback = b.bench.Kernels.make_args ~n:r.Trace.n ~seed:r.Trace.seed in
        match Device.run b.dev b.entry.Kernel_cache.compiled ~args with
        | stats ->
            let start = !cursor in
            cursor := !cursor + stats.Device.service_ps;
            if stats.Device.abft_mismatches > 0 then
              Corrupt
                {
                  item;
                  dev_id = Device.id b.dev;
                  service_ps = stats.Device.service_ps;
                  fault = stats.Device.abft_fault;
                }
            else
              Recorded
                {
                  Telemetry.request = r;
                  outcome = Telemetry.Completed;
                  device = Some (Device.id b.dev);
                  batch = Some b.batch_id;
                  cache_hit = b.cache_hit;
                  queue_depth = item.depth;
                  start_ps = start;
                  finish_ps = !cursor;
                  service_ps = stats.Device.service_ps;
                  retries = item.attempts;
                  tuned = b.entry.Kernel_cache.tuned;
                  checksum = Some (checksum_of_mats (readback ()));
                }
        | exception Tdo_ir.Exec.Exec_error msg ->
            Recorded
              {
                Telemetry.request = r;
                outcome = Telemetry.Failed msg;
                device = Some (Device.id b.dev);
                batch = Some b.batch_id;
                cache_hit = b.cache_hit;
                queue_depth = item.depth;
                start_ps = !cursor;
                finish_ps = !cursor;
                service_ps = 0;
                retries = item.attempts;
                tuned = b.entry.Kernel_cache.tuned;
                checksum = None;
              })
      b.items
  in
  Device.set_available_ps b.dev !cursor;
  results

let replay ?(config = default_config) (trace : Trace.t) =
  if config.devices < 1 then invalid_arg "Scheduler.replay: need at least one device";
  if config.max_batch < 1 then invalid_arg "Scheduler.replay: max_batch must be >= 1";
  if config.recovery.max_attempts < 1 then
    invalid_arg "Scheduler.replay: recovery.max_attempts must be >= 1";
  let t0 = Unix.gettimeofday () in
  let xbar =
    config.platform_config.Platform.engine.Tdo_cimacc.Micro_engine.xbar
  in
  let cache =
    Kernel_cache.create ~capacity:config.cache_capacity ~options:config.options
      ?tuning:config.tuning
      ~device:(xbar.Tdo_pcm.Crossbar.rows, xbar.Tdo_pcm.Crossbar.cols)
      ()
  in
  let devices =
    Array.init config.devices (fun id ->
        let d =
          Device.create ~platform_config:config.platform_config ~seed:(config.device_seed + id)
            ~id ()
        in
        (match config.on_device_create with Some f -> f d | None -> ());
        d)
  in
  let corruptions = Array.make config.devices 0 in
  let telemetry = Telemetry.create () in
  let arrivals = ref trace.Trace.requests in
  let queue : queued list ref = ref [] in
  let queue_len = ref 0 in
  let now = ref 0 in
  let batch_counter = ref 0 in
  let record = Telemetry.record telemetry in
  let record_failed (r : Trace.request) depth msg =
    record
      {
        Telemetry.request = r;
        outcome = Telemetry.Failed msg;
        device = None;
        batch = None;
        cache_hit = false;
        queue_depth = depth;
        start_ps = !now;
        finish_ps = !now;
        service_ps = 0;
        retries = 0;
        tuned = false;
        checksum = None;
      }
  in

  let admit_due () =
    let rec go () =
      match !arrivals with
      | (r : Trace.request) :: rest when r.Trace.arrival_ps <= !now ->
          arrivals := rest;
          if config.queue_capacity > 0 && !queue_len >= config.queue_capacity then
            record
              {
                Telemetry.request = r;
                outcome = Telemetry.Rejected_overloaded;
                device = None;
                batch = None;
                cache_hit = false;
                queue_depth = !queue_len;
                start_ps = r.Trace.arrival_ps;
                finish_ps = r.Trace.arrival_ps;
                service_ps = 0;
                retries = 0;
                tuned = false;
                checksum = None;
              }
          else begin
            queue := !queue @ [ { req = r; depth = !queue_len; attempts = 0; tried = [] } ];
            incr queue_len
          end;
          Telemetry.sample_queue_depth telemetry ~at_ps:r.Trace.arrival_ps ~depth:!queue_len;
          go ()
      | _ -> ()
    in
    go ()
  in

  (* Host-interpreter execution: deadline degradation ([Cpu_fallback])
     and the terminal recovery policy ([Recovered_host]) share this
     path — exact results, modelled latency. *)
  let run_fallback ?(outcome = Telemetry.Cpu_fallback) ?(retries = 0) ((r : Trace.request), depth)
      =
    match Kernels.find r.Trace.kernel with
    | Error msg -> record_failed r depth msg
    | Ok bench -> (
        match
          let ast = Tdo_lang.Parser.parse_func (bench.Kernels.source ~n:r.Trace.n) in
          Tdo_lang.Typecheck.check_func ast;
          let args, readback = bench.Kernels.make_args ~n:r.Trace.n ~seed:r.Trace.seed in
          Interp.run ast ~args;
          (readback (), bench.Kernels.macs ~n:r.Trace.n)
        with
        | mats, macs ->
            let service_ps = config.cpu_ps_per_mac * macs in
            record
              {
                Telemetry.request = r;
                outcome;
                device = None;
                batch = None;
                cache_hit = false;
                queue_depth = depth;
                start_ps = !now;
                finish_ps = !now + service_ps;
                service_ps;
                retries;
                tuned = false;
                checksum = Some (checksum_of_mats mats);
              }
        | exception e -> record_failed r depth (Printexc.to_string e))
  in

  let cull_expired () =
    if not config.ignore_deadlines then begin
      let expired, live =
        List.partition
          (fun it ->
            match it.req.Trace.deadline_ps with
            | Some d -> !now > it.req.Trace.arrival_ps + d
            | None -> false)
          !queue
      in
      if expired <> [] then begin
        queue := live;
        queue_len := List.length live;
        List.iter (fun it -> run_fallback ~retries:it.attempts (it.req, it.depth)) expired
      end
    end
  in

  let pop_batch ~dev_id =
    (* The first queued item this device may take: one it has not
       already corrupted. Items it must skip stay queued, in order. *)
    let rec split acc = function
      | [] -> None
      | item :: rest when List.mem dev_id item.tried -> split (item :: acc) rest
      | item :: rest -> Some (List.rev acc, item, rest)
    in
    match split [] !queue with
    | None -> None
    | Some (before, item, rest) ->
        if item.attempts > 0 || (not config.batching) || config.max_batch <= 1 then begin
          (* retried work is dispatched alone: its timing must not be
             entangled with fresh requests *)
          queue := before @ rest;
          queue_len := List.length !queue;
          Some [ item ]
        end
        else begin
          (* coalesce fresh queued requests sharing (kernel, n): one
             compile, one launch, back-to-back execution on one device *)
          let taken = ref [ item ] in
          let kept = ref [] in
          let count = ref 1 in
          List.iter
            (fun it ->
              if
                !count < config.max_batch
                && it.attempts = 0 && it.tried = []
                && it.req.Trace.kernel = item.req.Trace.kernel
                && it.req.Trace.n = item.req.Trace.n
              then begin
                taken := it :: !taken;
                incr count
              end
              else kept := it :: !kept)
            rest;
          queue := before @ List.rev !kept;
          queue_len := List.length !queue;
          Some (List.rev !taken)
        end
  in

  let free_devices () =
    Array.to_list devices
    |> List.filter (fun d -> (not (Device.is_quarantined d)) && Device.available_ps d <= !now)
    |> List.sort (fun a b ->
           compare (Device.write_pressure a, Device.id a) (Device.write_pressure b, Device.id b))
  in

  (* Recovery policy for one corrupt attempt (runs on the scheduler,
     after the wave): count it against the device, quarantine the
     device once it crosses the threshold, then either requeue the
     request for another device or degrade it to the host. *)
  let handle_corrupt ~item ~dev_id ~fault requeue =
    let dev = devices.(dev_id) in
    corruptions.(dev_id) <- corruptions.(dev_id) + 1;
    if corruptions.(dev_id) >= config.recovery.quarantine_after && not (Device.is_quarantined dev)
    then begin
      let rows =
        match fault with Some (_, (row_off, _, nrows, _)) -> (row_off, nrows) | None -> (0, 0)
      in
      Device.quarantine dev ~rows
    end;
    let item = { item with attempts = item.attempts + 1; tried = dev_id :: item.tried } in
    let untried_device_exists =
      Array.exists
        (fun d -> (not (Device.is_quarantined d)) && not (List.mem (Device.id d) item.tried))
        devices
    in
    if item.attempts >= config.recovery.max_attempts || not untried_device_exists then begin
      run_fallback ~outcome:Telemetry.Recovered_host ~retries:item.attempts (item.req, item.depth);
      requeue
    end
    else item :: requeue
  in

  (* Form one batch per free device (least-worn device first), then
     execute the whole wave — in parallel on the domain pool when
     configured. Every decision (membership, placement, start times) is
     fixed before execution starts, so the wave's results do not depend
     on how it is run. *)
  let dispatch () =
    let prepared =
      List.filter_map
        (fun dev ->
          match pop_batch ~dev_id:(Device.id dev) with
          | None -> None
          | Some items -> (
              let r0 = (List.hd items).req in
              match Kernels.find r0.Trace.kernel with
              | Error msg ->
                  List.iter (fun it -> record_failed it.req it.depth msg) items;
                  None
              | Ok bench -> (
                  let misses0 = (Kernel_cache.stats cache).Kernel_cache.misses in
                  match Kernel_cache.find_or_compile cache (bench.Kernels.source ~n:r0.Trace.n) with
                  | entry ->
                      let cache_hit =
                        (Kernel_cache.stats cache).Kernel_cache.misses = misses0
                      in
                      let batch_id = !batch_counter in
                      incr batch_counter;
                      Some
                        {
                          dev;
                          batch_id;
                          start_ps = !now + config.dispatch_overhead_ps;
                          cache_hit;
                          bench;
                          entry;
                          items;
                        }
                  | exception e ->
                      List.iter (fun it -> record_failed it.req it.depth (Printexc.to_string e)) items;
                      None)))
        (free_devices ())
    in
    match prepared with
    | [] -> false
    | waves ->
        let results =
          if config.parallel && List.length waves > 1 then
            Pool.parallel_map execute_batch waves
          else List.map execute_batch waves
        in
        let requeue =
          List.fold_left
            (List.fold_left (fun acc -> function
               | Recorded r ->
                   record r;
                   acc
               | Corrupt { item; dev_id; service_ps = _; fault } ->
                   handle_corrupt ~item ~dev_id ~fault acc))
            [] results
        in
        (* retried work goes back to the head of the queue so recovery
           runs before newer arrivals *)
        if requeue <> [] then begin
          queue := List.rev requeue @ !queue;
          queue_len := List.length !queue
        end;
        true
  in

  while !arrivals <> [] || !queue <> [] do
    admit_due ();
    cull_expired ();
    if not (dispatch ()) then begin
      let next_arrival =
        match !arrivals with [] -> max_int | r :: _ -> r.Trace.arrival_ps
      in
      let next_free =
        Array.fold_left
          (fun acc d ->
            let a = Device.available_ps d in
            if a > !now then min acc a else acc)
          max_int devices
      in
      let next = if !queue = [] then next_arrival else min next_arrival next_free in
      if next = max_int && !queue <> [] then begin
        (* dead end: every queued item has exhausted the usable pool
           (e.g. all devices quarantined) — drain it to the host so the
           loop terminates *)
        let stuck = !queue in
        queue := [];
        queue_len := 0;
        List.iter
          (fun it ->
            run_fallback ~outcome:Telemetry.Recovered_host ~retries:it.attempts
              (it.req, it.depth))
          stuck
      end
      else
        (* [next = max_int] can only follow a dispatch step that consumed
           the queue through failure records; nudge the clock so the loop
           re-checks termination. *)
        now := if next = max_int then !now + 1 else max next (!now + 1)
    end
  done;

  let makespan_ps =
    List.fold_left (fun acc r -> max acc r.Telemetry.finish_ps) 0 (Telemetry.records telemetry)
  in
  {
    trace;
    config;
    telemetry;
    cache = Kernel_cache.stats cache;
    devices =
      Array.to_list devices
      |> List.map (fun d -> (Device.id d, Device.wear d, Device.requests_served d));
    quarantined =
      Array.to_list devices
      |> List.filter (fun d -> Device.is_quarantined d)
      |> List.map Device.id;
    makespan_ps;
    wall_s = Unix.gettimeofday () -. t0;
  }

(* ---------- report accessors ---------- *)

let completed r = Telemetry.count r.telemetry Telemetry.Completed
let fallbacks r = Telemetry.count r.telemetry Telemetry.Cpu_fallback
let recovered r = Telemetry.count r.telemetry Telemetry.Recovered_host
let rejections r = Telemetry.count r.telemetry Telemetry.Rejected_overloaded
let failures r = Telemetry.count r.telemetry (Telemetry.Failed "")
let detected_corruptions r = (Telemetry.summary r.telemetry).Telemetry.detected_corruptions

let cache_hit_rate r =
  let c = r.cache in
  let lookups = c.Kernel_cache.hits + c.Kernel_cache.misses in
  if lookups = 0 then 0.0 else float_of_int c.Kernel_cache.hits /. float_of_int lookups

let divergence a b =
  let of_b = Hashtbl.create 256 in
  List.iter
    (fun (r : Telemetry.record) ->
      match (r.Telemetry.outcome, r.Telemetry.checksum) with
      | Telemetry.Completed, Some cs -> Hashtbl.replace of_b r.Telemetry.request.Trace.id cs
      | _ -> ())
    (Telemetry.records b.telemetry);
  List.fold_left
    (fun acc (r : Telemetry.record) ->
      match (r.Telemetry.outcome, r.Telemetry.checksum) with
      | Telemetry.Completed, Some cs -> (
          match Hashtbl.find_opt of_b r.Telemetry.request.Trace.id with
          | Some cs' when cs' <> cs -> acc + 1
          | Some _ | None -> acc)
      | _ -> acc)
    0
    (Telemetry.records a.telemetry)
