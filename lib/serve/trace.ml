module Prng = Tdo_util.Prng
module Time_base = Tdo_sim.Time_base

type slo = Interactive | Batch | Best_effort

let slo_name = function
  | Interactive -> "interactive"
  | Batch -> "batch"
  | Best_effort -> "best_effort"

let slo_of_name = function
  | "interactive" -> Ok Interactive
  | "batch" -> Ok Batch
  | "best_effort" -> Ok Best_effort
  | other ->
      Error
        (Printf.sprintf "unknown SLO class %S (expected interactive, batch or best_effort)"
           other)

let all_slos = [ Interactive; Batch; Best_effort ]

type request = {
  id : int;
  kernel : string;
  n : int;
  seed : int;
  arrival_ps : int;
  deadline_ps : int option;
  tenant : int;
  slo : slo;
}

type t = { name : string; seed : int; requests : request list }

(* (kernel, n, popularity weight): a skewed mix over few combinations,
   GEMM-heavy like the paper's Fig. 6 winners. *)
let standard_mix =
  [
    ("gemm", 16, 30);
    ("gemm", 24, 15);
    ("2mm", 16, 12);
    ("3mm", 12, 8);
    ("gesummv", 24, 12);
    ("bicg", 24, 8);
    ("mvt", 24, 8);
    ("conv", 12, 7);
  ]

let smoke_mix = [ ("gemm", 12, 3); ("gesummv", 16, 1) ]

type profile = {
  count : int;
  mix : (string * int * int) list;
  mean_gap_us : float;
  deadline_us : int option;
}

let profile_table =
  [
    ("synthetic-smoke", { count = 40; mix = smoke_mix; mean_gap_us = 40.0; deadline_us = None });
    ("synthetic-small", { count = 200; mix = standard_mix; mean_gap_us = 30.0; deadline_us = None });
    ("synthetic-medium", { count = 1000; mix = standard_mix; mean_gap_us = 75.0; deadline_us = None });
    ("synthetic-large", { count = 4000; mix = standard_mix; mean_gap_us = 50.0; deadline_us = None });
    (* arrivals faster than one device drains: the backlog blows the
       deadline and exercises the CPU-fallback path *)
    ("synthetic-tight", { count = 200; mix = standard_mix; mean_gap_us = 8.0; deadline_us = Some 150 });
  ]

let profiles = List.map fst profile_table

let pick_weighted g mix =
  let total = List.fold_left (fun acc (_, _, w) -> acc + w) 0 mix in
  let r = Prng.int g ~bound:total in
  let rec go acc = function
    | [] -> assert false
    | (k, n, w) :: rest -> if r < acc + w then (k, n) else go (acc + w) rest
  in
  go 0 mix

let synthetic ?(seed = 42) ?deadline_us name =
  match List.assoc_opt name profile_table with
  | None ->
      Error
        (Printf.sprintf "unknown trace '%s' (expected one of: %s)" name
           (String.concat ", " profiles))
  | Some p ->
      let g = Prng.create ~seed in
      let deadline_us = match deadline_us with Some _ as d -> d | None -> p.deadline_us in
      let deadline_ps = Option.map (fun us -> us * Time_base.ps_per_us) deadline_us in
      let clock = ref 0 in
      let requests =
        List.init p.count (fun id ->
            let kernel, n = pick_weighted g p.mix in
            (* exponential inter-arrival: a memoryless open-loop client *)
            let u = Prng.float g ~bound:1.0 in
            let gap_us = p.mean_gap_us *. -.Float.log (1.0 -. u) in
            clock := !clock + int_of_float (gap_us *. float_of_int Time_base.ps_per_us);
            {
              id;
              kernel;
              n;
              seed = (seed * 1_000_003) + id;
              arrival_ps = !clock;
              deadline_ps;
              tenant = 0;
              slo = Interactive;
            })
      in
      Ok { name; seed; requests }

let distinct_kernels t =
  List.sort_uniq compare (List.map (fun r -> (r.kernel, r.n)) t.requests)

(* ---------- line codec ----------

   One request per line, `req k=v ...` with a fixed key order, so the
   encoding of a trace is byte-deterministic in its contents. The same
   lines are the wire protocol of {!Frontend} and the body of the
   {!Tdo_loadgen.Codec} trace files. *)

let request_to_line r =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf "req id=%d tenant=%d class=%s kernel=%s n=%d seed=%d arrival_ps=%d" r.id
       r.tenant (slo_name r.slo) r.kernel r.n r.seed r.arrival_ps);
  (match r.deadline_ps with
  | Some d -> Buffer.add_string b (Printf.sprintf " deadline_ps=%d" d)
  | None -> ());
  Buffer.contents b

let request_of_line line =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
  | "req" :: fields ->
      let parse_field acc field =
        match (acc, String.index_opt field '=') with
        | Error _, _ -> acc
        | Ok _, None -> fail "malformed field %S (expected key=value)" field
        | Ok kvs, Some i ->
            Ok
              ((String.sub field 0 i, String.sub field (i + 1) (String.length field - i - 1))
              :: kvs)
      in
      Result.bind (List.fold_left parse_field (Ok []) fields) (fun kvs ->
          let int_field ?default key =
            match (List.assoc_opt key kvs, default) with
            | Some v, _ -> (
                match int_of_string_opt v with
                | Some n -> Ok n
                | None -> fail "field %s: %S is not an integer" key v)
            | None, Some d -> Ok d
            | None, None -> fail "missing field %s" key
          in
          let ( let* ) = Result.bind in
          let* id = int_field ~default:0 "id" in
          let* tenant = int_field ~default:0 "tenant" in
          let* n = int_field "n" in
          let* seed = int_field ~default:0 "seed" in
          let* arrival_ps = int_field ~default:0 "arrival_ps" in
          let* deadline_ps =
            match List.assoc_opt "deadline_ps" kvs with
            | None -> Ok None
            | Some v -> (
                match int_of_string_opt v with
                | Some d -> Ok (Some d)
                | None -> fail "field deadline_ps: %S is not an integer" v)
          in
          let* slo =
            match List.assoc_opt "class" kvs with
            | None -> Ok Interactive
            | Some name -> slo_of_name name
          in
          let* kernel =
            match List.assoc_opt "kernel" kvs with
            | Some k -> Ok k
            | None -> fail "missing field kernel"
          in
          Ok { id; kernel; n; seed; arrival_ps; deadline_ps; tenant; slo })
  | verb :: _ -> fail "unknown verb %S (expected req)" verb
  | [] -> fail "empty request line"
