module Prng = Tdo_util.Prng
module Time_base = Tdo_sim.Time_base

type request = {
  id : int;
  kernel : string;
  n : int;
  seed : int;
  arrival_ps : int;
  deadline_ps : int option;
}

type t = { name : string; seed : int; requests : request list }

(* (kernel, n, popularity weight): a skewed mix over few combinations,
   GEMM-heavy like the paper's Fig. 6 winners. *)
let standard_mix =
  [
    ("gemm", 16, 30);
    ("gemm", 24, 15);
    ("2mm", 16, 12);
    ("3mm", 12, 8);
    ("gesummv", 24, 12);
    ("bicg", 24, 8);
    ("mvt", 24, 8);
    ("conv", 12, 7);
  ]

let smoke_mix = [ ("gemm", 12, 3); ("gesummv", 16, 1) ]

type profile = {
  count : int;
  mix : (string * int * int) list;
  mean_gap_us : float;
  deadline_us : int option;
}

let profile_table =
  [
    ("synthetic-smoke", { count = 40; mix = smoke_mix; mean_gap_us = 40.0; deadline_us = None });
    ("synthetic-small", { count = 200; mix = standard_mix; mean_gap_us = 30.0; deadline_us = None });
    ("synthetic-medium", { count = 1000; mix = standard_mix; mean_gap_us = 75.0; deadline_us = None });
    ("synthetic-large", { count = 4000; mix = standard_mix; mean_gap_us = 50.0; deadline_us = None });
    (* arrivals faster than one device drains: the backlog blows the
       deadline and exercises the CPU-fallback path *)
    ("synthetic-tight", { count = 200; mix = standard_mix; mean_gap_us = 8.0; deadline_us = Some 150 });
  ]

let profiles = List.map fst profile_table

let pick_weighted g mix =
  let total = List.fold_left (fun acc (_, _, w) -> acc + w) 0 mix in
  let r = Prng.int g ~bound:total in
  let rec go acc = function
    | [] -> assert false
    | (k, n, w) :: rest -> if r < acc + w then (k, n) else go (acc + w) rest
  in
  go 0 mix

let synthetic ?(seed = 42) ?deadline_us name =
  match List.assoc_opt name profile_table with
  | None ->
      Error
        (Printf.sprintf "unknown trace '%s' (expected one of: %s)" name
           (String.concat ", " profiles))
  | Some p ->
      let g = Prng.create ~seed in
      let deadline_us = match deadline_us with Some _ as d -> d | None -> p.deadline_us in
      let deadline_ps = Option.map (fun us -> us * Time_base.ps_per_us) deadline_us in
      let clock = ref 0 in
      let requests =
        List.init p.count (fun id ->
            let kernel, n = pick_weighted g p.mix in
            (* exponential inter-arrival: a memoryless open-loop client *)
            let u = Prng.float g ~bound:1.0 in
            let gap_us = p.mean_gap_us *. -.Float.log (1.0 -. u) in
            clock := !clock + int_of_float (gap_us *. float_of_int Time_base.ps_per_us);
            {
              id;
              kernel;
              n;
              seed = (seed * 1_000_003) + id;
              arrival_ps = !clock;
              deadline_ps;
            })
      in
      Ok { name; seed; requests }

let distinct_kernels t =
  List.sort_uniq compare (List.map (fun r -> (r.kernel, r.n)) t.requests)
