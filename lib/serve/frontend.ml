module Platform = Tdo_runtime.Platform
module Flow = Tdo_cim.Flow
module Kernels = Tdo_polybench.Kernels
module Backend = Tdo_backend.Backend
module Offload = Tdo_tactics.Offload
module Cost_model = Tdo_tune.Cost_model
module Json = Tdo_util.Json
module Time_base = Tdo_sim.Time_base

type config = {
  fleet : Backend.profile list;
  platform_config : Platform.config;
  options : Flow.options;
  cache_capacity : int;
  queue_capacity : int;
  admission : Admission.policy option;
  tuning : Tdo_tune.Db.t option;
  device_seed : int;
  window_us : float option;
}

let default_config =
  {
    fleet = [ Backend.pcm; Backend.pcm; Backend.digital; Backend.dual ];
    platform_config = Platform.default_config;
    options = Flow.o3_loop_tactics;
    cache_capacity = 64;
    queue_capacity = 256;
    admission = Some Admission.default_policy;
    tuning = None;
    device_seed = 0;
    window_us = Some 100_000.0 (* one roll-up line per 100 ms of wall time *);
  }

type stop = Eof | Quit

(* ---------- request parsing (line protocol + JSON objects) ---------- *)

let json_request j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let num k = Option.bind (Json.member k j) Json.to_float in
  let int_or d k = match num k with Some f -> int_of_float f | None -> d in
  match (str "kernel", num "n") with
  | None, _ -> Error "missing field kernel"
  | _, None -> Error "missing field n"
  | Some kernel, Some n ->
      Result.bind
        (match str "class" with None -> Ok Trace.Interactive | Some s -> Trace.slo_of_name s)
        (fun slo ->
          Ok
            {
              Trace.id = int_or 0 "id";
              kernel;
              n = int_of_float n;
              seed = int_or 0 "seed";
              arrival_ps = 0;
              deadline_ps =
                Option.map (fun us -> int_of_float (us *. float_of_int Time_base.ps_per_us))
                  (num "deadline_us");
              tenant = int_or 0 "tenant";
              slo;
            })

type command = Request of Trace.request | Stats | Quit_cmd

let parse_line line =
  let line = String.trim line in
  if line = "" then Error "empty request line"
  else if line.[0] = '{' then
    match Json.parse line with
    | Error e -> Error e
    | Ok j -> Result.map (fun r -> Request r) (json_request j)
  else
    match String.index_opt line ' ' with
    | None when line = "stats" -> Ok Stats
    | None when line = "quit" -> Ok Quit_cmd
    | _ ->
        if String.length line >= 3 && String.sub line 0 3 = "req" then
          Result.map (fun r -> Request r) (Trace.request_of_line line)
        else Error (Printf.sprintf "unknown verb %S (expected req, stats or quit)" line)

(* ---------- the wall-clock driver ---------- *)

let write_line fd line =
  let s = line ^ "\n" in
  let len = String.length s in
  let off = ref 0 in
  (try
     while !off < len do
       off := !off + Unix.write_substring fd s !off (len - !off)
     done
   with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> ())

let us_of_ps ps = float_of_int ps /. float_of_int Time_base.ps_per_us

let serve ?(emit = prerr_endline) ?(config = default_config) ~input ~output () =
  if config.fleet = [] then invalid_arg "Frontend.serve: empty fleet";
  let fleet = Array.of_list config.fleet in
  let t0 = Unix.gettimeofday () in
  (* wall-clock picoseconds since the front-end came up: the time base
     of arrivals, admission refills and telemetry windows *)
  let now_ps () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e12) in
  let observer =
    Option.map (fun w -> Telemetry.live_view ~window_us:w ~emit ()) config.window_us
  in
  let telemetry = Telemetry.create ?observer () in
  let admission = Option.map Admission.create config.admission in
  let xbar = config.platform_config.Platform.engine.Tdo_cimacc.Micro_engine.xbar in
  let geometry = (xbar.Tdo_pcm.Crossbar.rows, xbar.Tdo_pcm.Crossbar.cols) in
  let classes =
    Array.to_list fleet
    |> List.map (fun (p : Backend.profile) -> p.Backend.cls)
    |> List.sort_uniq compare
  in
  let cache =
    Kernel_cache.create ~capacity:config.cache_capacity ~options:config.options
      ?tuning:config.tuning
      ~geometries:(List.map (fun cls -> (cls, geometry)) classes)
      ()
  in
  let devices =
    Array.init (Array.length fleet) (fun id ->
        Device.create ~platform_config:config.platform_config
          ~seed:(config.device_seed + id) ~backend:fleet.(id) ~id ())
  in
  (* same placement estimate the replay scheduler uses, memoised on
     (kernel, n, class); the front-end serves one request at a time so
     every device is free at placement time and the score reduces to
     predicted service plus the conversion charge *)
  let est_memo : (string * int * string, float) Hashtbl.t = Hashtbl.create 64 in
  let estimate ~cls (bench : Kernels.benchmark) ~n =
    let key = (bench.Kernels.name, n, Backend.class_name cls) in
    match Hashtbl.find_opt est_memo key with
    | Some v -> v
    | None ->
        let v =
          match
            let entry = Kernel_cache.find_or_compile cache ~cls (bench.Kernels.source ~n) in
            let plan =
              Offload.plan entry.Kernel_cache.options.Flow.tactics
                entry.Kernel_cache.compiled.Flow.func
            in
            Cost_model.predict_cycles (Cost_model.uncalibrated_for cls) plan
          with
          | cycles -> cycles *. Backend.ps_per_cycle
          | exception _ -> Float.max_float
        in
        Hashtbl.add est_memo key v;
        v
  in
  let choose_device (bench : Kernels.benchmark) ~n =
    Array.fold_left
      (fun acc d ->
        let profile = Device.profile d in
        let conversion =
          if Device.mode d = Backend.Memory_mode then
            float_of_int profile.Backend.conversion_latency_ps
          else 0.0
        in
        let s = (estimate ~cls:profile.Backend.cls bench ~n +. conversion, Device.id d) in
        match acc with Some (_, s') when s' <= s -> acc | _ -> Some (d, s))
      None devices
    |> Option.map fst
  in
  let pending : Trace.request Queue.t = Queue.create () in
  let respond line = write_line output line in
  let record = Telemetry.record telemetry in
  let record_dropped (r : Trace.request) outcome =
    record
      {
        Telemetry.request = r;
        outcome;
        device = None;
        profile = None;
        batch = None;
        cache_hit = false;
        queue_depth = Queue.length pending;
        start_ps = r.Trace.arrival_ps;
        finish_ps = r.Trace.arrival_ps;
        service_ps = 0;
        retries = 0;
        tuned = false;
        write_bytes = 0;
        checksum = None;
      }
  in
  let fail (r : Trace.request) depth msg =
    record
      {
        Telemetry.request = r;
        outcome = Telemetry.Failed msg;
        device = None;
        profile = None;
        batch = None;
        cache_hit = false;
        queue_depth = depth;
        start_ps = now_ps ();
        finish_ps = now_ps ();
        service_ps = 0;
        retries = 0;
        tuned = false;
        write_bytes = 0;
        checksum = None;
      };
    respond (Printf.sprintf "err id=%d msg=%s" r.Trace.id msg)
  in
  let quit = ref false in
  let handle_stats () =
    let s = Telemetry.summary telemetry in
    let pct p =
      match Telemetry.latency_percentile telemetry ~p with Some v -> v | None -> 0.0
    in
    respond
      (Printf.sprintf
         "stats requests=%d completed=%d shed_rate_limited=%d shed_load=%d rejected=%d \
          failed=%d served_tuned=%d p50_us=%.1f p99_us=%.1f"
         s.Telemetry.requests s.Telemetry.completed s.Telemetry.shed_rate_limited
         s.Telemetry.shed_load s.Telemetry.rejected s.Telemetry.failed
         s.Telemetry.served_tuned (pct 50.0) (pct 99.0))
  in
  let handle_request (r : Trace.request) =
    (* the client's arrival stamp is replaced with the wall clock: the
       front-end is open-loop in real time, not a replayer *)
    let r = { r with Trace.arrival_ps = now_ps () } in
    let verdict =
      match admission with
      | None -> Admission.Admit
      | Some adm ->
          Admission.admit adm ~now_ps:r.Trace.arrival_ps ~queue_len:(Queue.length pending)
            ~capacity:config.queue_capacity r
    in
    match verdict with
    | Admission.Shed_rate ->
        record_dropped r (Telemetry.Shed Telemetry.Rate_limited);
        respond (Printf.sprintf "shed id=%d reason=rate_limited" r.Trace.id)
    | Admission.Shed_load ->
        record_dropped r (Telemetry.Shed Telemetry.Load_shed);
        respond (Printf.sprintf "shed id=%d reason=load_shed" r.Trace.id)
    | Admission.Admit ->
        if config.queue_capacity > 0 && Queue.length pending >= config.queue_capacity then begin
          record_dropped r Telemetry.Rejected_overloaded;
          respond (Printf.sprintf "rejected id=%d" r.Trace.id)
        end
        else begin
          Queue.push r pending;
          Telemetry.sample_queue_depth telemetry ~at_ps:r.Trace.arrival_ps
            ~depth:(Queue.length pending)
        end
  in
  let handle_line line =
    if String.trim line <> "" then
      match parse_line line with
      | Error msg -> respond (Printf.sprintf "err id=0 msg=%s" msg)
      | Ok Stats -> handle_stats ()
      | Ok Quit_cmd -> quit := true
      | Ok (Request r) -> handle_request r
  in
  let execute_one (r : Trace.request) =
    let depth = Queue.length pending in
    match Kernels.find r.Trace.kernel with
    | Error msg -> fail r depth msg
    | Ok bench -> (
        match choose_device bench ~n:r.Trace.n with
        | None -> fail r depth "no usable device"
        | Some dev -> (
            let start = now_ps () in
            if Device.mode dev = Backend.Memory_mode then begin
              let (_ : float) = Device.convert ~at_ps:start dev ~to_compute:true in
              Telemetry.record_conversion telemetry ~at_ps:start ~device:(Device.id dev)
                ~profile:(Device.profile dev).Backend.name ~to_compute:true
            end;
            let misses0 = (Kernel_cache.stats cache).Kernel_cache.misses in
            match
              Kernel_cache.find_or_compile cache ~cls:(Device.device_class dev)
                (bench.Kernels.source ~n:r.Trace.n)
            with
            | exception e -> fail r depth (Printexc.to_string e)
            | entry -> (
                let cache_hit = (Kernel_cache.stats cache).Kernel_cache.misses = misses0 in
                let args, readback =
                  bench.Kernels.make_args ~n:r.Trace.n ~seed:r.Trace.seed
                in
                match
                  match Device.device_class dev with
                  | Backend.Host_blas ->
                      Device.run_host dev ~ast:entry.Kernel_cache.ast ~args
                        ~macs:(bench.Kernels.macs ~n:r.Trace.n)
                  | Backend.Pcm_crossbar | Backend.Digital_tile ->
                      Device.run dev entry.Kernel_cache.compiled ~args
                with
                | exception Tdo_ir.Exec.Exec_error msg -> fail r depth msg
                | stats when stats.Device.abft_mismatches > 0 ->
                    fail r depth "abft mismatch: corrupted result discarded"
                | stats ->
                    let finish = now_ps () in
                    let checksum = Scheduler.output_checksum (readback ()) in
                    record
                      {
                        Telemetry.request = r;
                        outcome = Telemetry.Completed;
                        device = Some (Device.id dev);
                        profile = Some (Device.profile dev).Backend.name;
                        batch = None;
                        cache_hit;
                        queue_depth = depth;
                        start_ps = start;
                        finish_ps = finish;
                        service_ps = stats.Device.service_ps;
                        retries = 0;
                        tuned = entry.Kernel_cache.tuned;
                        write_bytes = stats.Device.write_bytes;
                        checksum = Some checksum;
                      };
                    respond
                      (Printf.sprintf
                         "ok id=%d device=%d class=%s latency_us=%.1f service_us=%.1f \
                          checksum=%s"
                         r.Trace.id (Device.id dev)
                         (Backend.class_name (Device.device_class dev))
                         (us_of_ps (finish - r.Trace.arrival_ps))
                         (us_of_ps stats.Device.service_ps)
                         checksum))))
  in
  (* One reader buffer across reads: lines can arrive split. *)
  let partial = Buffer.create 256 in
  let chunk = Bytes.create 65536 in
  let eof = ref false in
  (* Drain everything the client has written so far: admission sees the
     backlog the moment it forms, not one request at a time. [block]
     waits (bounded) for the first byte when there is nothing to do. *)
  let pump ~block =
    let rec drain first =
      if !eof then ()
      else
        let timeout = if first && block then 0.2 else 0.0 in
        match Unix.select [ input ] [] [] timeout with
        | [], _, _ -> ()
        | _ -> (
            match Unix.read input chunk 0 (Bytes.length chunk) with
            | 0 -> eof := true
            | k ->
                Buffer.add_subbytes partial chunk 0 k;
                drain false
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain first)
    in
    drain true;
    let data = Buffer.contents partial in
    Buffer.clear partial;
    let rec split from =
      match String.index_from_opt data from '\n' with
      | Some i ->
          handle_line (String.sub data from (i - from));
          split (i + 1)
      | None -> Buffer.add_string partial (String.sub data from (String.length data - from))
    in
    split 0
  in
  while (not !quit) && not (!eof && Queue.is_empty pending) do
    pump ~block:(Queue.is_empty pending);
    if (not !quit) && not (Queue.is_empty pending) then execute_one (Queue.pop pending)
  done;
  (* requests still queued when the client said quit are answered *)
  while not (Queue.is_empty pending) do
    execute_one (Queue.pop pending)
  done;
  (telemetry, if !quit then Quit else Eof)

let serve_unix_socket ?emit ?(config = default_config) ~path () =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let stop = ref false in
      let sessions = ref [] in
      while not !stop do
        let client, _ = Unix.accept sock in
        let telemetry, reason =
          Fun.protect
            ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
            (fun () -> serve ?emit ~config ~input:client ~output:client ())
        in
        sessions := telemetry :: !sessions;
        if reason = Quit then stop := true
      done;
      List.rev !sessions)
