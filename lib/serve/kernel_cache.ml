module Flow = Tdo_cim.Flow
module Ast = Tdo_lang.Ast
module Backend = Tdo_backend.Backend

type entry = {
  key : string;
  cls : Backend.device_class;
  ast : Ast.func;
  compiled : Flow.compiled;
  options : Flow.options;
  compile_s : float;
  tuned : bool;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  compile_s_total : float;
}

type slot = { entry : entry; mutable last_use : int }

type t = {
  capacity : int;
  opts : Flow.options;
  tuning : Tdo_tune.Db.t option;
  geometries : (Backend.device_class * (int * int)) list;
  on_evict : (string -> unit) option;
  table : (string, slot) Hashtbl.t;
  mutable tick : int;  (** LRU clock: bumped on every lookup *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable compile_s_total : float;
}

let create ?(capacity = 64) ?(options = Flow.o3_loop_tactics) ?tuning ?(geometries = [])
    ?on_evict () =
  {
    capacity = max 1 capacity;
    opts = options;
    tuning;
    geometries;
    on_evict;
    table = Hashtbl.create 32;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    compile_s_total = 0.0;
  }

let options t = t.opts

(* The AST digest is the key space the tuning database shares; the
   cache folds the effective options and the device class in on top, so
   two compiles of the same program under different configurations — or
   for different classes, whose tuned geometries differ — occupy
   distinct slots. *)
let structural_key ?(cls = Backend.Pcm_crossbar) ~(options : Flow.options) (ast : Ast.func)
    =
  let repr =
    Ast.structural_digest ast
    ^ Marshal.to_string (options.Flow.enable_loop_tactics, options.Flow.tactics) []
    ^ Backend.class_name cls
  in
  Digest.to_hex (Digest.string repr)

(* The options this kernel actually compiles under for [cls]: the
   tuning database's per-(kernel, class) configuration (geometry
   clamped to the class's crossbar shape) when one exists, the
   cache-wide default otherwise. [Db.config_for] refuses cross-class
   entries, so a configuration measured on the analog crossbar is never
   silently replayed on a digital tile. *)
let resolve t ~cls ast =
  match t.tuning with
  | None -> (t.opts, false)
  | Some db -> (
      let device = List.assoc_opt cls t.geometries in
      match Tdo_tune.Db.config_for ?device ~cls db ast with
      | Some tactics when tactics <> t.opts.Flow.tactics ->
          ({ t.opts with Flow.tactics }, true)
      | Some _ | None -> (t.opts, false))

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key slot ->
      match !victim with
      | Some (_, age) when slot.last_use >= age -> ()
      | _ -> victim := Some (key, slot.last_use))
    t.table;
  match !victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      (* residency layered on this entry is now unbacked: the scheduler
         hooks here to drop any device's matching pinned-weight claim *)
      (match t.on_evict with Some f -> f key | None -> ())
  | None -> ()

let find_or_compile t ?(cls = Backend.Pcm_crossbar) source =
  let ast = Tdo_lang.Parser.parse_func source in
  let options, tuned = resolve t ~cls ast in
  let key = structural_key ~cls ~options ast in
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.table key with
  | Some slot ->
      t.hits <- t.hits + 1;
      slot.last_use <- t.tick;
      slot.entry
  | None ->
      t.misses <- t.misses + 1;
      Tdo_lang.Typecheck.check_func ast;
      let t0 = Unix.gettimeofday () in
      let compiled = Flow.compile_checked ~options source in
      let dt = Unix.gettimeofday () -. t0 in
      t.compile_s_total <- t.compile_s_total +. dt;
      let entry = { key; cls; ast; compiled; options; compile_s = dt; tuned } in
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      Hashtbl.replace t.table key { entry; last_use = t.tick };
      entry

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
    compile_s_total = t.compile_s_total;
  }
