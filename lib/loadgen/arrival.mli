(** Open-loop arrival processes.

    An arrival process turns a seeded PRNG stream into a sequence of
    inter-arrival gaps (picoseconds) — open-loop: the client issues on
    its own schedule regardless of how the server is coping, which is
    what makes overload visible instead of self-throttling away. Three
    shapes:

    - [Poisson]: memoryless at a fixed rate — the steady-state model.
    - [Bursty]: a two-state Markov-modulated Poisson process; dwell
      times in the quiet (base-rate) and burst phase are exponential
      with the given means. Models flash crowds and retry storms.
    - [Diurnal]: a non-homogeneous Poisson process (by thinning) whose
      rate sweeps a raised cosine from [base] up to [peak] and back
      over [period] — a day's traffic curve compressed to the period.

    Generation is deterministic in the PRNG: same seed, same gaps,
    byte-identical traces. *)

module Prng = Tdo_util.Prng

type process =
  | Poisson of { rate_rps : float }
  | Bursty of {
      base_rps : float;  (** quiet-phase rate *)
      burst_rps : float;  (** burst-phase rate *)
      mean_burst_s : float;  (** mean dwell in the burst phase *)
      mean_quiet_s : float;  (** mean dwell in the quiet phase *)
    }
  | Diurnal of { base_rps : float; peak_rps : float; period_s : float }

val name : process -> string
(** ["poisson"], ["bursty"], ["diurnal"]. *)

val describe : process -> string
(** The spec string {!parse} accepts, e.g. ["poisson:25000"]. *)

val parse : string -> (process, string) result
(** [poisson:RATE], [bursty:BASE:BURST:ON_S:OFF_S],
    [diurnal:BASE:PEAK:PERIOD_S] — rates in requests per second,
    durations in seconds. *)

val gaps_ps : process -> Prng.t -> unit -> int
(** A stateful gap generator over [g]: each call returns the next
    inter-arrival gap in picoseconds (always [>= 1], so per-stream
    timestamps are strictly increasing). The closure owns its phase /
    thinning state; draws advance [g]. *)

val mean_rate_rps : process -> float
(** Long-run mean arrival rate: the configured rate for [Poisson], the
    dwell-weighted mean for [Bursty], the raised-cosine mean
    [(base + peak) / 2] for [Diurnal]. What the inter-arrival-mean
    property test checks against. *)
