(** Trace files: replayable dumps of generated workloads.

    A trace file is one header line —

    {v #tdo-trace v1 name=<name> seed=<seed> v}

    — followed by one {!Tdo_serve.Trace.request_to_line} per request.
    The encoding is byte-deterministic in the trace contents, so two
    generator runs with the same seed produce identical files (the
    property the qcheck suite pins down), and the body lines can be
    piped straight into a {!Tdo_serve.Frontend} session. *)

module Trace = Tdo_serve.Trace

val encode : Trace.t -> string
val decode : string -> (Trace.t, string) result
(** Inverse of {!encode}; blank lines are skipped, errors carry the
    1-based line number. *)

val write : Trace.t -> path:string -> unit
val read : path:string -> (Trace.t, string) result
