module Trace = Tdo_serve.Trace

let magic = "#tdo-trace v1"

let encode (t : Trace.t) =
  let b = Buffer.create (128 * (1 + List.length t.Trace.requests)) in
  Buffer.add_string b
    (Printf.sprintf "%s name=%s seed=%d\n" magic t.Trace.name t.Trace.seed);
  List.iter
    (fun r ->
      Buffer.add_string b (Trace.request_to_line r);
      Buffer.add_char b '\n')
    t.Trace.requests;
  Buffer.contents b

let decode s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char '\n' s with
  | [] -> fail "empty trace"
  | header :: body ->
      let header = String.trim header in
      if not (String.length header >= String.length magic
              && String.sub header 0 (String.length magic) = magic)
      then fail "missing %S header" magic
      else begin
        (* header fields after the magic: name=... seed=... *)
        let fields =
          String.sub header (String.length magic) (String.length header - String.length magic)
          |> String.split_on_char ' '
          |> List.filter_map (fun f ->
                 match String.index_opt f '=' with
                 | Some i ->
                     Some
                       ( String.sub f 0 i,
                         String.sub f (i + 1) (String.length f - i - 1) )
                 | None -> None)
        in
        let name = Option.value ~default:"trace" (List.assoc_opt "name" fields) in
        let seed =
          Option.value ~default:0
            (Option.bind (List.assoc_opt "seed" fields) int_of_string_opt)
        in
        let rec go lineno acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest when String.trim line = "" -> go (lineno + 1) acc rest
          | line :: rest -> (
              match Trace.request_of_line line with
              | Ok r -> go (lineno + 1) (r :: acc) rest
              | Error e -> fail "line %d: %s" lineno e)
        in
        Result.map
          (fun requests -> { Trace.name; seed; requests })
          (go 2 [] body)
      end

let write (t : Trace.t) ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (encode t))

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> decode s
  | exception Sys_error e -> Error e
