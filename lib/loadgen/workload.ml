module Prng = Tdo_util.Prng
module Trace = Tdo_serve.Trace

type tenant = {
  tenant : int;
  tname : string;
  slo : Trace.slo;
  process : Arrival.process;
  mix : (string * int * int) list;
  deadline_us : int option;
}

(* The serving mix the synthetic profiles use: a skewed popularity
   distribution over few (kernel, size) combinations, GEMM-heavy. *)
let default_mix =
  [
    ("gemm", 16, 30);
    ("gemm", 24, 15);
    ("2mm", 16, 12);
    ("3mm", 12, 8);
    ("gesummv", 24, 12);
    ("bicg", 24, 8);
    ("mvt", 24, 8);
    ("conv", 12, 7);
  ]

(* Smaller, latency-friendly kernels for the interactive class. *)
let interactive_mix = [ ("gemm", 16, 40); ("gesummv", 24, 25); ("mvt", 24, 20); ("bicg", 24, 15) ]

(* Heavier multi-GEMM pipelines for the batch class. *)
let batch_mix = [ ("gemm", 24, 30); ("2mm", 16, 30); ("3mm", 12, 25); ("conv", 12, 15) ]

let standard_tenants ?(process = fun _slo rate -> Arrival.Poisson { rate_rps = rate })
    ~total_rate_rps () =
  [
    {
      tenant = 1;
      tname = "chat";
      slo = Trace.Interactive;
      process = process Trace.Interactive (0.5 *. total_rate_rps);
      mix = interactive_mix;
      deadline_us = None;
    };
    {
      tenant = 2;
      tname = "analytics";
      slo = Trace.Batch;
      process = process Trace.Batch (0.3 *. total_rate_rps);
      mix = batch_mix;
      deadline_us = None;
    };
    {
      tenant = 3;
      tname = "scavenger";
      slo = Trace.Best_effort;
      process = process Trace.Best_effort (0.2 *. total_rate_rps);
      mix = default_mix;
      deadline_us = None;
    };
  ]

(* Graph-serving tenants: every request names a whole multi-kernel
   program ("graph:mlp4", "graph:attn"), so one tenant's stream is
   exactly the repeat traffic weight residency amortises — two tenants
   sharing a model (chat-mlp and shadow-mlp) exercise the
   never-across-tenants isolation property under load. *)
let graph_tenants ?(process = fun _slo rate -> Arrival.Poisson { rate_rps = rate })
    ?(n = 24) ~total_rate_rps () =
  [
    {
      tenant = 1;
      tname = "chat-mlp";
      slo = Trace.Interactive;
      process = process Trace.Interactive (0.45 *. total_rate_rps);
      mix = [ ("graph:mlp4", n, 1) ];
      deadline_us = None;
    };
    {
      tenant = 2;
      tname = "rank-attn";
      slo = Trace.Batch;
      process = process Trace.Batch (0.35 *. total_rate_rps);
      mix = [ ("graph:attn", n, 1) ];
      deadline_us = None;
    };
    {
      tenant = 3;
      tname = "shadow-mlp";
      slo = Trace.Best_effort;
      process = process Trace.Best_effort (0.2 *. total_rate_rps);
      mix = [ ("graph:mlp4", n, 1) ];
      deadline_us = None;
    };
  ]

let pick_weighted g mix =
  let total = List.fold_left (fun acc (_, _, w) -> acc + w) 0 mix in
  let r = Prng.int g ~bound:total in
  let rec go acc = function
    | [] -> assert false
    | (k, n, w) :: rest -> if r < acc + w then (k, n) else go (acc + w) rest
  in
  go 0 mix

(* One live generator per tenant: its own PRNG stream (decorrelated
   from the other tenants by hashing the tenant id into the seed), its
   own arrival clock, the head request pre-drawn for the merge. *)
type stream = {
  spec : tenant;
  g : Prng.t;
  gap : unit -> int;
  mutable clock_ps : int;
  mutable head : (int * string * int);  (** (arrival_ps, kernel, n) *)
}

let advance s =
  s.clock_ps <- s.clock_ps + s.gap ();
  let kernel, n = pick_weighted s.g s.spec.mix in
  s.head <- (s.clock_ps, kernel, n)

let generate ?(seed = 42) ~count tenants =
  if tenants = [] then invalid_arg "Workload.generate: no tenants";
  if count < 0 then invalid_arg "Workload.generate: negative count";
  let streams =
    List.map
      (fun spec ->
        let g = Prng.create ~seed:(seed lxor (spec.tenant * 0x9e3779b97f4a7c)) in
        let s =
          { spec; g; gap = Arrival.gaps_ps spec.process g; clock_ps = 0; head = (0, "", 0) }
        in
        advance s;
        s)
      tenants
  in
  let requests = ref [] in
  for id = 0 to count - 1 do
    (* earliest head across tenants; ties break to the lowest tenant
       id, so the merge is deterministic *)
    let s =
      List.fold_left
        (fun best s ->
          let a, _, _ = s.head in
          let b, _, _ = best.head in
          if a < b || (a = b && s.spec.tenant < best.spec.tenant) then s else best)
        (List.hd streams) (List.tl streams)
    in
    let arrival_ps, kernel, n = s.head in
    requests :=
      {
        Trace.id;
        kernel;
        n;
        seed = (seed * 1_000_003) + id;
        arrival_ps;
        deadline_ps =
          Option.map
            (fun us -> us * Tdo_sim.Time_base.ps_per_us)
            s.spec.deadline_us;
        tenant = s.spec.tenant;
        slo = s.spec.slo;
      }
      :: !requests;
    advance s
  done;
  let tenant_names =
    String.concat "+" (List.map (fun t -> t.tname) tenants)
  in
  { Trace.name = Printf.sprintf "loadgen-%s" tenant_names; seed; requests = List.rev !requests }
