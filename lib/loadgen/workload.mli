(** Multi-tenant open-loop workload generation.

    A workload is a set of tenants, each with an SLO class, an
    {!Arrival.process}, a (kernel, size, weight) popularity mix and an
    optional per-request deadline. {!generate} runs every tenant's
    arrival process on its own decorrelated PRNG stream and merges the
    streams into one {!Tdo_serve.Trace.t} sorted by arrival time with
    dense request ids — ready for {!Tdo_serve.Scheduler.replay}, the
    {!Tdo_serve.Frontend} wire protocol, or a {!Codec} trace file.

    Everything is deterministic in [seed]: same seed, same tenants,
    same byte-identical trace. *)

module Trace = Tdo_serve.Trace

type tenant = {
  tenant : int;  (** tenant id; admission buckets key on it *)
  tname : string;
  slo : Trace.slo;
  process : Arrival.process;
  mix : (string * int * int) list;  (** (kernel, n, popularity weight) *)
  deadline_us : int option;  (** per-request deadline; [None] = none *)
}

val default_mix : (string * int * int) list
(** The GEMM-heavy skewed mix the synthetic trace profiles use. *)

val standard_tenants :
  ?process:(Trace.slo -> float -> Arrival.process) ->
  total_rate_rps:float ->
  unit ->
  tenant list
(** The three-tenant reference workload: an interactive "chat" tenant
    (50% of the total rate, small latency-friendly kernels), a batch
    "analytics" tenant (30%, heavier multi-GEMM pipelines) and a
    best-effort "scavenger" tenant (20%, the full mix). [process]
    builds each tenant's arrival process from its class and rate share
    (default: Poisson at that rate) — override it to make the same
    tenants bursty or diurnal. *)

val graph_tenants :
  ?process:(Trace.slo -> float -> Arrival.process) ->
  ?n:int ->
  total_rate_rps:float ->
  unit ->
  tenant list
(** The three-tenant graph-serving workload: every request names a
    whole multi-kernel program at size [n] (default 24). "chat-mlp"
    (interactive, 45%, [graph:mlp4]) and "shadow-mlp" (best-effort,
    20%, the {e same} model — exercising cross-tenant residency
    isolation) bracket a batch "rank-attn" tenant (35%, [graph:attn]).
    The repeat traffic within each tenant's stream is what graph-scope
    weight residency amortises. *)

val generate : ?seed:int -> count:int -> tenant list -> Trace.t
(** Merge the tenants' arrival streams into one trace of exactly
    [count] requests (each tenant contributes in proportion to its
    arrival rate; ties break to the lowest tenant id). Request data
    seeds are unique per request. Raises [Invalid_argument] on an
    empty tenant list or negative count. *)
