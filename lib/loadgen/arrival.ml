module Prng = Tdo_util.Prng

type process =
  | Poisson of { rate_rps : float }
  | Bursty of {
      base_rps : float;
      burst_rps : float;
      mean_burst_s : float;
      mean_quiet_s : float;
    }
  | Diurnal of { base_rps : float; peak_rps : float; period_s : float }

let name = function
  | Poisson _ -> "poisson"
  | Bursty _ -> "bursty"
  | Diurnal _ -> "diurnal"

let describe = function
  | Poisson { rate_rps } -> Printf.sprintf "poisson:%g" rate_rps
  | Bursty { base_rps; burst_rps; mean_burst_s; mean_quiet_s } ->
      Printf.sprintf "bursty:%g:%g:%g:%g" base_rps burst_rps mean_burst_s mean_quiet_s
  | Diurnal { base_rps; peak_rps; period_s } ->
      Printf.sprintf "diurnal:%g:%g:%g" base_rps peak_rps period_s

let parse spec =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let num s =
    match float_of_string_opt s with
    | Some f when f >= 0.0 -> Ok f
    | _ -> fail "arrival spec: %S is not a non-negative number" s
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' (String.trim spec) with
  | [ "poisson"; r ] ->
      let* rate_rps = num r in
      if rate_rps <= 0.0 then fail "poisson rate must be positive"
      else Ok (Poisson { rate_rps })
  | [ "bursty"; base; burst; on_s; off_s ] ->
      let* base_rps = num base in
      let* burst_rps = num burst in
      let* mean_burst_s = num on_s in
      let* mean_quiet_s = num off_s in
      if base_rps <= 0.0 || burst_rps <= 0.0 then fail "bursty rates must be positive"
      else if mean_burst_s <= 0.0 || mean_quiet_s <= 0.0 then
        fail "bursty phase durations must be positive"
      else Ok (Bursty { base_rps; burst_rps; mean_burst_s; mean_quiet_s })
  | [ "diurnal"; base; peak; period ] ->
      let* base_rps = num base in
      let* peak_rps = num peak in
      let* period_s = num period in
      if base_rps <= 0.0 || peak_rps < base_rps then
        fail "diurnal needs 0 < base <= peak"
      else if period_s <= 0.0 then fail "diurnal period must be positive"
      else Ok (Diurnal { base_rps; peak_rps; period_s })
  | _ ->
      fail
        "unknown arrival spec %S (expected poisson:RATE, bursty:BASE:BURST:ON_S:OFF_S or \
         diurnal:BASE:PEAK:PERIOD_S)"
        spec

let ps_per_s = 1e12

(* Exponential gap at [rate] (per second), in picoseconds, never zero
   so arrival timestamps are strictly increasing per stream. *)
let exp_gap_ps g ~rate =
  let u = Prng.float g ~bound:1.0 in
  max 1 (int_of_float (-.Float.log (1.0 -. u) /. rate *. ps_per_s))

let gaps_ps process g =
  match process with
  | Poisson { rate_rps } -> fun () -> exp_gap_ps g ~rate:rate_rps
  | Bursty { base_rps; burst_rps; mean_burst_s; mean_quiet_s } ->
      (* two-state MMPP: exponentially distributed dwell in a quiet
         (base-rate) and a burst phase, Poisson arrivals within each.
         Phase switches happen on the stream's own clock, so the gap
         that straddles a switch is drawn at the new phase's rate —
         a one-gap approximation that keeps the generator O(1). *)
      let in_burst = ref false in
      let phase_left_ps = ref 0 in
      let dwell () =
        let mean_s = if !in_burst then mean_burst_s else mean_quiet_s in
        let u = Prng.float g ~bound:1.0 in
        max 1 (int_of_float (-.Float.log (1.0 -. u) *. mean_s *. ps_per_s))
      in
      fun () ->
        if !phase_left_ps <= 0 then begin
          in_burst := not !in_burst;
          phase_left_ps := dwell ()
        end;
        let rate = if !in_burst then burst_rps else base_rps in
        let gap = exp_gap_ps g ~rate in
        phase_left_ps := !phase_left_ps - gap;
        gap
  | Diurnal { base_rps; peak_rps; period_s } ->
      (* non-homogeneous Poisson by thinning: candidate gaps at the
         peak rate, each accepted with probability rate(t)/peak where
         rate(t) sweeps a raised cosine between base and peak over the
         period. The stream keeps its own clock. *)
      let clock_ps = ref 0 in
      let rate_at t_ps =
        let t_s = float_of_int t_ps /. ps_per_s in
        let phase = 2.0 *. Float.pi *. t_s /. period_s in
        base_rps +. ((peak_rps -. base_rps) *. 0.5 *. (1.0 -. Float.cos phase))
      in
      let rec next acc =
        let cand = exp_gap_ps g ~rate:peak_rps in
        let acc = acc + cand in
        let t = !clock_ps + acc in
        if Prng.float g ~bound:1.0 *. peak_rps <= rate_at t then begin
          clock_ps := t;
          acc
        end
        else next acc
      in
      fun () -> next 0

let mean_rate_rps = function
  | Poisson { rate_rps } -> rate_rps
  | Bursty { base_rps; burst_rps; mean_burst_s; mean_quiet_s } ->
      (* time-weighted over the two phases *)
      ((base_rps *. mean_quiet_s) +. (burst_rps *. mean_burst_s))
      /. (mean_quiet_s +. mean_burst_s)
  | Diurnal { base_rps; peak_rps; period_s = _ } ->
      (* mean of the raised cosine *)
      0.5 *. (base_rps +. peak_rps)
