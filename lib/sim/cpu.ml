type iclass =
  | Int_alu
  | Int_mul
  | Fp_add
  | Fp_mul
  | Fp_mac
  | Fp_div
  | Load
  | Store
  | Branch
  | Call
  | Ret

let class_index = function
  | Int_alu -> 0
  | Int_mul -> 1
  | Fp_add -> 2
  | Fp_mul -> 3
  | Fp_mac -> 4
  | Fp_div -> 5
  | Load -> 6
  | Store -> 7
  | Branch -> 8
  | Call -> 9
  | Ret -> 10

let class_count_total = 11

type config = { name : string; freq_hz : float; class_base_cycles : iclass -> int }

let arm_a7_base_cycles = function
  | Int_alu -> 1
  | Int_mul -> 3
  | Fp_add -> 4
  | Fp_mul -> 4
  | Fp_mac -> 8
  | Fp_div -> 18
  | Load -> 1
  | Store -> 1
  | Branch -> 1
  | Call -> 2
  | Ret -> 2

let arm_a7 = { name = "arm-a7"; freq_hz = 1.2e9; class_base_cycles = arm_a7_base_cycles }

type roi = { roi_instructions : int; roi_cycles : int; roi_time_ps : Time_base.ps }

type t = {
  config : config;
  l1d : Cache.t;
  period_ps : int;
  mutable cycles : int;
  mutable instructions : int;
  mutable extra_ps : Time_base.ps;  (** stall time not expressed in cycles *)
  class_counts : int array;
  mutable roi_open : (int * int * Time_base.ps) option;
  mutable roi_acc : roi;
}

let create ?(config = arm_a7) ~l1d () =
  {
    config;
    l1d;
    period_ps = Time_base.period_ps ~freq_hz:config.freq_hz;
    cycles = 0;
    instructions = 0;
    extra_ps = 0;
    class_counts = Array.make class_count_total 0;
    roi_open = None;
    roi_acc = { roi_instructions = 0; roi_cycles = 0; roi_time_ps = 0 };
  }

let config t = t.config
let time_ps t = (t.cycles * t.period_ps) + t.extra_ps

(* [issue_at] is the executor's hot entry: a labelled (non-optional)
   address means no [Some] box per charged load/store. *)
let issue_at t ~addr cls =
  let mem_cycles =
    match cls with
    | Load | Store ->
        let op = if cls = Load then Cache.Read else Cache.Write in
        Time_base.ps_to_cycles ~freq_hz:t.config.freq_hz (Cache.access t.l1d op ~addr)
    | Int_alu | Int_mul | Fp_add | Fp_mul | Fp_mac | Fp_div | Branch | Call | Ret ->
        invalid_arg "Cpu.issue_at: not a memory instruction"
  in
  t.cycles <- t.cycles + t.config.class_base_cycles cls + mem_cycles;
  t.instructions <- t.instructions + 1;
  let i = class_index cls in
  t.class_counts.(i) <- t.class_counts.(i) + 1

let issue t ?addr cls =
  match (cls, addr) with
  | (Load | Store), Some a -> issue_at t ~addr:a cls
  | (Load | Store), None -> invalid_arg "Cpu.issue: memory instruction without an address"
  | (Int_alu | Int_mul | Fp_add | Fp_mul | Fp_mac | Fp_div | Branch | Call | Ret), _ ->
      t.cycles <- t.cycles + t.config.class_base_cycles cls;
      t.instructions <- t.instructions + 1;
      let i = class_index cls in
      t.class_counts.(i) <- t.class_counts.(i) + 1

let issue_many t cls count =
  if count < 0 then invalid_arg "Cpu.issue_many: negative count";
  (match cls with
  | Load | Store -> invalid_arg "Cpu.issue_many: memory instructions need addresses"
  | Int_alu | Int_mul | Fp_add | Fp_mul | Fp_mac | Fp_div | Branch | Call | Ret -> ());
  t.cycles <- t.cycles + (count * t.config.class_base_cycles cls);
  t.instructions <- t.instructions + count;
  let i = class_index cls in
  t.class_counts.(i) <- t.class_counts.(i) + count

let stall_ps t ps =
  if ps < 0 then invalid_arg "Cpu.stall_ps: negative stall";
  t.extra_ps <- t.extra_ps + ps

let cycles t = t.cycles
let instructions t = t.instructions
let class_count t cls = t.class_counts.(class_index cls)

let roi_begin t =
  match t.roi_open with
  | Some _ -> failwith "Cpu.roi_begin: ROI window already open"
  | None -> t.roi_open <- Some (t.instructions, t.cycles, time_ps t)

let roi_end t =
  match t.roi_open with
  | None -> failwith "Cpu.roi_end: no ROI window open"
  | Some (insts, cycles, time) ->
      t.roi_open <- None;
      t.roi_acc <-
        {
          roi_instructions = t.roi_acc.roi_instructions + (t.instructions - insts);
          roi_cycles = t.roi_acc.roi_cycles + (t.cycles - cycles);
          roi_time_ps = t.roi_acc.roi_time_ps + (time_ps t - time);
        }

let roi t = t.roi_acc
