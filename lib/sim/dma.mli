(** DMA engine of the CIM accelerator (Section II-C/D).

    Moves data between shared main memory and the accelerator's local
    buffers. All accesses are {e uncacheable} — they bypass the host
    cache hierarchy and go straight over the system bus to memory, which
    is how the paper's accelerator keeps the shared region coherent. *)

type config = { setup_ps : Time_base.ps }

val default_config : config
(** 100 ns descriptor setup per transfer. *)

type t

val create : ?config:config -> bus:Bus.t -> memory:Memory.t -> unit -> t

val read : t -> addr:int -> bytes:int -> Bytes.t * Time_base.ps
(** Fetch [bytes] from shared memory; returns the data and the
    transfer latency (setup + bus + DRAM burst). *)

val write : t -> addr:int -> Bytes.t -> Time_base.ps
(** Store a buffer to shared memory; returns the latency. *)

val read_strided :
  t -> addr:int -> row_bytes:int -> rows:int -> stride_bytes:int -> Bytes.t * Time_base.ps
(** Gather [rows] segments of [row_bytes] starting every [stride_bytes];
    the result is the packed concatenation. One descriptor: the latency
    is that of a single burst of [rows * row_bytes]. Used for matrix
    tiles and strided vectors (matrix columns). *)

val write_strided :
  t -> addr:int -> row_bytes:int -> stride_bytes:int -> Bytes.t -> Time_base.ps
(** Scatter the packed buffer as rows of [row_bytes] every
    [stride_bytes]. The buffer length must be a multiple of
    [row_bytes]. *)

val charge : t -> bytes:int -> Time_base.ps
(** Account one descriptor moving [bytes] (bus + DRAM timing and
    traffic counters) without touching data — used by scatter/gather
    style engine operations whose functional effect is performed
    element-wise by the caller. *)

val charge_write : t -> bytes:int -> Time_base.ps
(** Like {!charge} but counts the traffic as written rather than
    read. *)

val memory : t -> Memory.t
(** The shared memory this engine moves data to and from — for callers
    that perform the functional side of a transfer element-wise and use
    {!charge}/{!charge_write} for the timing side. *)

val bytes_read : t -> int
val bytes_written : t -> int
val transfers : t -> int
