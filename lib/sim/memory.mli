(** Physical main memory (the 2 GB LPDDR3 of Table I).

    Functionally a sparse byte-addressable array (allocated in chunks on
    first touch); the timing side reports a fixed row-access latency
    plus a bandwidth term per burst, which the caches and the DMA engine
    incorporate into their own latencies.

    Single-precision floats are stored as IEEE-754 binary32, matching
    the 4-byte operands the paper's kernels use. *)

type config = {
  size_bytes : int;
  access_latency_ps : Time_base.ps;  (** fixed cost per burst *)
  bytes_per_ps : float;  (** sustained bandwidth *)
}

val default_config : config
(** 2 GB, 50 ns access, 7.46 GB/s (LPDDR3-933 x 8 bytes). *)

type t

val create : ?config:config -> ?scratch:Tdo_util.Arena.t -> unit -> t
(** [scratch] backs the 64 KB chunks with pooled (zero-filled on first
    touch) buffers instead of fresh allocations. Only pass it for a
    memory whose lifetime ends before the arena's next reset — the
    per-run platforms of {!Tdo_cim.Flow.run} — never for a long-lived
    one (a serving device). *)

val config : t -> config

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit

val read_i32 : t -> int -> int32
val write_i32 : t -> int -> int32 -> unit

val read_f32 : t -> int -> float
(** Reads 4 bytes as an IEEE binary32 (little endian), widened to
    [float]. Annotated [[@inline always]]: at an inlined call site the
    in-chunk fast path allocates nothing. *)

val write_f32 : t -> int -> float -> unit
(** Rounds to binary32 before storing. Allocation-free on the in-chunk
    fast path, like {!read_f32}. *)

val read_bytes : t -> int -> int -> Bytes.t
val write_bytes : t -> int -> Bytes.t -> unit

val burst_latency : t -> bytes:int -> Time_base.ps
(** Time for one burst of [bytes]: access latency + size / bandwidth. *)

val reads : t -> int
(** Total bytes read (functional accesses). *)

val writes : t -> int
(** Total bytes written. *)
