type op = Read | Write

type config = {
  name : string;
  size_bytes : int;
  line_bytes : int;
  ways : int;
  hit_latency_ps : Time_base.ps;
}

let l1d_arm_a7 =
  {
    name = "l1d";
    size_bytes = 32 * 1024;
    line_bytes = 64;
    ways = 4;
    hit_latency_ps = 2 * Time_base.ps_per_ns;
  }

let l2_arm_a7 =
  {
    name = "l2";
    size_bytes = 2 * 1024 * 1024;
    line_bytes = 64;
    ways = 8;
    hit_latency_ps = 10 * Time_base.ps_per_ns;
  }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  flushes : int;
  flushed_bytes : int;
}

let zero_stats =
  { hits = 0; misses = 0; evictions = 0; writebacks = 0; flushes = 0; flushed_bytes = 0 }

type line = { mutable tag : int; mutable valid : bool; mutable dirty : bool; mutable lru : int }

(* Counters are plain mutable ints: [access] sits under every simulated
   load and store, and rebuilding a 6-field stats record per access was
   the dominant allocation of the whole simulator. The immutable [stats]
   snapshot is built only when asked for. *)
type t = {
  config : config;
  sets : line array array;
  next : op -> addr:int -> bytes:int -> Time_base.ps;
  mutable clock : int;  (** logical timestamp for LRU ordering *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable flushes : int;
  mutable flushed_bytes : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(config = l1d_arm_a7) ~next () =
  if not (is_power_of_two config.line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  if config.ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  let lines = config.size_bytes / config.line_bytes in
  if lines mod config.ways <> 0 || lines / config.ways = 0 then
    invalid_arg "Cache.create: size / line / ways mismatch";
  let nsets = lines / config.ways in
  let sets =
    Array.init nsets (fun _ ->
        Array.init config.ways (fun _ -> { tag = 0; valid = false; dirty = false; lru = 0 }))
  in
  {
    config;
    sets;
    next;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
    flushes = 0;
    flushed_bytes = 0;
  }

let config t = t.config

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let line_base t set tag =
  let nsets = Array.length t.sets in
  ((tag * nsets) + set) * t.config.line_bytes

let access t op ~addr =
  if addr < 0 then invalid_arg "Cache.access: negative address";
  let line_addr = addr / t.config.line_bytes in
  let nsets = Array.length t.sets in
  let set_idx = line_addr mod nsets in
  let tag = line_addr / nsets in
  let set = t.sets.(set_idx) in
  (* One scan finds the hit and, failing that, the victim: the first
     invalid way if any, otherwise the least recently used valid way. *)
  let ways = Array.length set in
  let hit = ref (-1) in
  let invalid = ref (-1) in
  let lru = ref 0 in
  let i = ref 0 in
  while !hit < 0 && !i < ways do
    let l = Array.unsafe_get set !i in
    if l.valid then begin
      if l.tag = tag then hit := !i
      else if !invalid < 0 && l.lru < set.(!lru).lru then lru := !i
    end
    else if !invalid < 0 then invalid := !i;
    incr i
  done;
  if !hit >= 0 then begin
    let l = set.(!hit) in
    l.lru <- tick t;
    if op = Write then l.dirty <- true;
    t.hits <- t.hits + 1;
    t.config.hit_latency_ps
  end
  else begin
    t.misses <- t.misses + 1;
    let victim = if !invalid >= 0 then set.(!invalid) else set.(!lru) in
    let writeback_latency =
      if victim.valid && victim.dirty then begin
        t.evictions <- t.evictions + 1;
        t.writebacks <- t.writebacks + 1;
        t.next Write ~addr:(line_base t set_idx victim.tag) ~bytes:t.config.line_bytes
      end
      else begin
        if victim.valid then t.evictions <- t.evictions + 1;
        0
      end
    in
    let fill_latency =
      t.next Read ~addr:(line_addr * t.config.line_bytes) ~bytes:t.config.line_bytes
    in
    victim.tag <- tag;
    victim.valid <- true;
    victim.dirty <- op = Write;
    victim.lru <- tick t;
    t.config.hit_latency_ps + writeback_latency + fill_latency
  end

let flush t =
  let total = ref 0 in
  let flushed = ref 0 in
  Array.iteri
    (fun set_idx set ->
      Array.iter
        (fun l ->
          if l.valid && l.dirty then begin
            total := !total + t.next Write ~addr:(line_base t set_idx l.tag) ~bytes:t.config.line_bytes;
            flushed := !flushed + t.config.line_bytes
          end;
          l.valid <- false;
          l.dirty <- false)
        set)
    t.sets;
  t.flushes <- t.flushes + 1;
  t.writebacks <- t.writebacks + (!flushed / t.config.line_bytes);
  t.flushed_bytes <- t.flushed_bytes + !flushed;
  !total

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    writebacks = t.writebacks;
    flushes = t.flushes;
    flushed_bytes = t.flushed_bytes;
  }

let reset_stats t =
  t.hits <- zero_stats.hits;
  t.misses <- zero_stats.misses;
  t.evictions <- zero_stats.evictions;
  t.writebacks <- zero_stats.writebacks;
  t.flushes <- zero_stats.flushes;
  t.flushed_bytes <- zero_stats.flushed_bytes

let dirty_lines t =
  Array.fold_left
    (fun acc set ->
      Array.fold_left (fun acc l -> if l.valid && l.dirty then acc + 1 else acc) acc set)
    0 t.sets
