(** Discrete-event kernel (the gem5 event queue).

    Events are callbacks scheduled at absolute simulated times; events
    scheduled for the same tick run in scheduling order, which keeps
    whole-system runs deterministic.

    The pending set is an array-backed binary min-heap keyed by
    [(time, seq)], so scheduling and dispatch are O(log n) and
    allocation-free on the hot path. Time never moves backwards:
    [schedule_at] and [run_until] reject targets before [now];
    [advance_to] is the one deliberately forgiving entry point (a
    synchronous component publishing progress may already be behind the
    event clock) and ignores past times instead. *)

type t

val create : unit -> t

val now : t -> Time_base.ps
(** Current simulated time. *)

val schedule_at : t -> time:Time_base.ps -> name:string -> (unit -> unit) -> unit
(** Raises [Invalid_argument] when scheduling in the past. *)

val schedule : t -> delay:Time_base.ps -> name:string -> (unit -> unit) -> unit
(** [schedule_at] relative to [now]. The delay must be non-negative. *)

val run_next : t -> bool
(** Run the earliest pending event, advancing [now] to its time.
    Returns [false] (and leaves time unchanged) when the queue is
    empty. *)

val run_until : t -> time:Time_base.ps -> unit
(** Run every event scheduled at or before [time], then advance [now]
    to exactly [time] — also when the queue drains early (or was empty
    to begin with). Raises [Invalid_argument] when [time] is before
    [now]. *)

val run_all : t -> unit
(** Drain the queue. *)

val advance_to : t -> time:Time_base.ps -> unit
(** Move the clock forward without running events; used by synchronous
    components (the CPU) to publish their progress. No-op if [time] is
    in the past. *)

val pending : t -> int
val executed : t -> int
