(* The pending set is an array-backed binary min-heap ordered by
   (time, seq): the sequence number makes the order total, so events
   scheduled for the same tick run in scheduling order and the heap's
   internal sift order can never leak into execution order. Compared to
   the previous Map.Make-based implementation this allocates nothing on
   the push/pop path beyond occasional capacity doubling, which matters
   because the CPU model schedules and drains events inside the
   simulation's innermost loops. *)

type event = { name : string; callback : unit -> unit }

type entry = { time : Time_base.ps; seq : int; event : event }

type t = {
  mutable now : Time_base.ps;
  mutable seq : int;
  mutable heap : entry array;  (** slots [0, size) are live *)
  mutable size : int;
  mutable executed : int;
}

let dummy_entry = { time = 0; seq = 0; event = { name = ""; callback = ignore } }

let create () = { now = 0; seq = 0; heap = Array.make 16 dummy_entry; size = 0; executed = 0 }

let now t = t.now

(* (time, seq) lexicographic order; seq values are unique *)
let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let heap = Array.make (2 * Array.length t.heap) dummy_entry in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let sift_up t i =
  let entry = t.heap.(i) in
  let i = ref i in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before entry t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    t.heap.(!i) <- t.heap.(parent);
    i := parent
  done;
  t.heap.(!i) <- entry

let sift_down t i =
  let entry = t.heap.(i) in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= t.size then continue := false
    else begin
      let r = l + 1 in
      let child = if r < t.size && before t.heap.(r) t.heap.(l) then r else l in
      if before t.heap.(child) entry then begin
        t.heap.(!i) <- t.heap.(child);
        i := child
      end
      else continue := false
    end
  done;
  t.heap.(!i) <- entry

let push t entry =
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy_entry;
    sift_down t 0
  end
  else t.heap.(0) <- dummy_entry;
  top

let schedule_at t ~time ~name callback =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Event_queue.schedule_at: %s scheduled at %d before now=%d" name time t.now);
  t.seq <- t.seq + 1;
  push t { time; seq = t.seq; event = { name; callback } }

let schedule t ~delay ~name callback =
  if delay < 0 then invalid_arg "Event_queue.schedule: negative delay";
  schedule_at t ~time:(t.now + delay) ~name callback

let run_next t =
  if t.size = 0 then false
  else begin
    let { time; event; _ } = pop t in
    t.now <- time;
    t.executed <- t.executed + 1;
    event.callback ();
    true
  end

let run_until t ~time =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Event_queue.run_until: target %d before now=%d" time t.now);
  while t.size > 0 && t.heap.(0).time <= time do
    ignore (run_next t)
  done;
  (* the clock lands on [time] even when the queue drains early *)
  if time > t.now then t.now <- time

let run_all t = while run_next t do () done

let advance_to t ~time = if time > t.now then t.now <- time

let pending t = t.size
let executed t = t.executed
