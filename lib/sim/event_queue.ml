(* The pending set is a binary min-heap ordered by (time, seq): the
   sequence number makes the order total, so events scheduled for the
   same tick run in scheduling order and the heap's internal sift order
   can never leak into execution order.

   The heap is stored as parallel arrays (structure-of-arrays) rather
   than an array of entry records: a push previously allocated a
   two-level {time; seq; event = {name; callback}} record pair per
   scheduled event, which matters because the CPU model schedules and
   drains events inside the simulation's innermost loops. With the
   fields split into unboxed int arrays plus name/callback slots,
   push/pop allocate nothing beyond occasional capacity doubling. *)

type t = {
  mutable now : Time_base.ps;
  mutable seq : int;
  (* slots [0, size) of each array are live and describe one event *)
  mutable times : int array;
  mutable seqs : int array;
  mutable names : string array;
  mutable callbacks : (unit -> unit) array;
  mutable size : int;
  mutable executed : int;
}

let create () =
  {
    now = 0;
    seq = 0;
    times = Array.make 16 0;
    seqs = Array.make 16 0;
    names = Array.make 16 "";
    callbacks = Array.make 16 ignore;
    size = 0;
    executed = 0;
  }

let now t = t.now

(* (time, seq) lexicographic order; seq values are unique *)
let before t i ~time ~seq =
  let ti = Array.unsafe_get t.times i in
  time < ti || (time = ti && seq < Array.unsafe_get t.seqs i)

let grow t =
  let cap = 2 * Array.length t.times in
  let times = Array.make cap 0
  and seqs = Array.make cap 0
  and names = Array.make cap ""
  and callbacks = Array.make cap ignore in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.names 0 names 0 t.size;
  Array.blit t.callbacks 0 callbacks 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.names <- names;
  t.callbacks <- callbacks

let set t i ~time ~seq ~name ~callback =
  Array.unsafe_set t.times i time;
  Array.unsafe_set t.seqs i seq;
  Array.unsafe_set t.names i name;
  Array.unsafe_set t.callbacks i callback

let move t ~src ~dst =
  Array.unsafe_set t.times dst (Array.unsafe_get t.times src);
  Array.unsafe_set t.seqs dst (Array.unsafe_get t.seqs src);
  Array.unsafe_set t.names dst (Array.unsafe_get t.names src);
  Array.unsafe_set t.callbacks dst (Array.unsafe_get t.callbacks src)

let sift_up t i ~time ~seq ~name ~callback =
  let i = ref i in
  while
    !i > 0
    &&
    (* the inserted (time, seq) sorts before its parent *)
    let parent = (!i - 1) / 2 in
    before t parent ~time ~seq
  do
    let parent = (!i - 1) / 2 in
    move t ~src:parent ~dst:!i;
    i := parent
  done;
  set t !i ~time ~seq ~name ~callback

let sift_down t ~time ~seq ~name ~callback =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= t.size then continue := false
    else begin
      let r = l + 1 in
      (* the smaller of the two children *)
      let child =
        if r < t.size && before t l ~time:t.times.(r) ~seq:t.seqs.(r) then r else l
      in
      if before t child ~time ~seq then continue := false
      else begin
        move t ~src:child ~dst:!i;
        i := child
      end
    end
  done;
  set t !i ~time ~seq ~name ~callback

let push t ~time ~seq ~name ~callback =
  if t.size = Array.length t.times then grow t;
  t.size <- t.size + 1;
  sift_up t (t.size - 1) ~time ~seq ~name ~callback

let schedule_at t ~time ~name callback =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Event_queue.schedule_at: %s scheduled at %d before now=%d" name time t.now);
  t.seq <- t.seq + 1;
  push t ~time ~seq:t.seq ~name ~callback

let schedule t ~delay ~name callback =
  if delay < 0 then invalid_arg "Event_queue.schedule: negative delay";
  schedule_at t ~time:(t.now + delay) ~name callback

let run_next t =
  if t.size = 0 then false
  else begin
    let time = t.times.(0) in
    let callback = t.callbacks.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      (* move the last entry down from the root *)
      let last = t.size in
      sift_down t ~time:t.times.(last) ~seq:t.seqs.(last) ~name:t.names.(last)
        ~callback:t.callbacks.(last);
      t.names.(last) <- "";
      t.callbacks.(last) <- ignore
    end
    else begin
      t.names.(0) <- "";
      t.callbacks.(0) <- ignore
    end;
    t.now <- time;
    t.executed <- t.executed + 1;
    callback ();
    true
  end

let run_until t ~time =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Event_queue.run_until: target %d before now=%d" time t.now);
  while t.size > 0 && t.times.(0) <= time do
    ignore (run_next t)
  done;
  (* the clock lands on [time] even when the queue drains early *)
  if time > t.now then t.now <- time

let run_all t = while run_next t do () done

let advance_to t ~time = if time > t.now then t.now <- time

let pending t = t.size
let executed t = t.executed
