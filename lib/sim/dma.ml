type config = { setup_ps : Time_base.ps }

let default_config = { setup_ps = 100 * Time_base.ps_per_ns }

type t = {
  config : config;
  bus : Bus.t;
  memory : Memory.t;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable transfers : int;
}

let create ?(config = default_config) ~bus ~memory () =
  { config; bus; memory; bytes_read = 0; bytes_written = 0; transfers = 0 }

let latency t ~bytes =
  t.config.setup_ps
  + Bus.transfer t.bus ~master:"cim-dma" ~bytes
  + Memory.burst_latency t.memory ~bytes

let read t ~addr ~bytes =
  let data = Memory.read_bytes t.memory addr bytes in
  t.bytes_read <- t.bytes_read + bytes;
  t.transfers <- t.transfers + 1;
  (data, latency t ~bytes)

let write t ~addr data =
  Memory.write_bytes t.memory addr data;
  let bytes = Bytes.length data in
  t.bytes_written <- t.bytes_written + bytes;
  t.transfers <- t.transfers + 1;
  latency t ~bytes

let read_strided t ~addr ~row_bytes ~rows ~stride_bytes =
  if row_bytes < 0 || rows < 0 || stride_bytes < 0 then
    invalid_arg "Dma.read_strided: negative geometry";
  let out = Bytes.create (rows * row_bytes) in
  for r = 0 to rows - 1 do
    let row = Memory.read_bytes t.memory (addr + (r * stride_bytes)) row_bytes in
    Bytes.blit row 0 out (r * row_bytes) row_bytes
  done;
  let bytes = rows * row_bytes in
  t.bytes_read <- t.bytes_read + bytes;
  t.transfers <- t.transfers + 1;
  (out, latency t ~bytes)

let write_strided t ~addr ~row_bytes ~stride_bytes data =
  if row_bytes <= 0 then invalid_arg "Dma.write_strided: row size must be positive";
  let len = Bytes.length data in
  if len mod row_bytes <> 0 then
    invalid_arg "Dma.write_strided: buffer is not a whole number of rows";
  let rows = len / row_bytes in
  for r = 0 to rows - 1 do
    Memory.write_bytes t.memory (addr + (r * stride_bytes)) (Bytes.sub data (r * row_bytes) row_bytes)
  done;
  t.bytes_written <- t.bytes_written + len;
  t.transfers <- t.transfers + 1;
  latency t ~bytes:len

let charge t ~bytes =
  if bytes < 0 then invalid_arg "Dma.charge: negative size";
  t.bytes_read <- t.bytes_read + bytes;
  t.transfers <- t.transfers + 1;
  latency t ~bytes

let charge_write t ~bytes =
  if bytes < 0 then invalid_arg "Dma.charge_write: negative size";
  t.bytes_written <- t.bytes_written + bytes;
  t.transfers <- t.transfers + 1;
  latency t ~bytes

let memory t = t.memory

let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written
let transfers t = t.transfers
