type config = {
  size_bytes : int;
  access_latency_ps : Time_base.ps;
  bytes_per_ps : float;
}

let default_config =
  {
    size_bytes = 2 * 1024 * 1024 * 1024;
    access_latency_ps = 50 * Time_base.ps_per_ns;
    bytes_per_ps = 7.46e9 /. 1e12;
  }

let chunk_bits = 16
let chunk_size = 1 lsl chunk_bits

type t = {
  config : config;
  chunks : (int, Bytes.t) Hashtbl.t;
  mutable reads : int;
  mutable writes : int;
  (* one-entry chunk cache: the executor streams through arrays, so
     consecutive accesses almost always land in the same 64 KB chunk *)
  mutable last_idx : int;
  mutable last_chunk : Bytes.t;
}

let no_chunk = Bytes.create 0

let create ?(config = default_config) () =
  if config.size_bytes <= 0 then invalid_arg "Memory.create: size must be positive";
  { config; chunks = Hashtbl.create 64; reads = 0; writes = 0; last_idx = -1; last_chunk = no_chunk }

let config t = t.config

let check_range t addr len =
  if addr < 0 || len < 0 || addr + len > t.config.size_bytes then
    invalid_arg (Printf.sprintf "Memory: access [%d, %d) out of range" addr (addr + len))

let chunk t idx =
  if t.last_idx = idx then t.last_chunk
  else
    let c =
      match Hashtbl.find_opt t.chunks idx with
      | Some c -> c
      | None ->
          let c = Bytes.make chunk_size '\000' in
          Hashtbl.add t.chunks idx c;
          c
    in
    t.last_idx <- idx;
    t.last_chunk <- c;
    c

let read_u8 t addr =
  check_range t addr 1;
  t.reads <- t.reads + 1;
  Char.code (Bytes.get (chunk t (addr lsr chunk_bits)) (addr land (chunk_size - 1)))

let write_u8 t addr v =
  check_range t addr 1;
  if v < 0 || v > 255 then invalid_arg "Memory.write_u8: byte out of range";
  t.writes <- t.writes + 1;
  Bytes.set (chunk t (addr lsr chunk_bits)) (addr land (chunk_size - 1)) (Char.chr v)

let read_bytes t addr len =
  check_range t addr len;
  t.reads <- t.reads + len;
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    let a = addr + i in
    Bytes.set out i (Bytes.get (chunk t (a lsr chunk_bits)) (a land (chunk_size - 1)))
  done;
  out

let write_bytes t addr data =
  let len = Bytes.length data in
  check_range t addr len;
  t.writes <- t.writes + len;
  for i = 0 to len - 1 do
    let a = addr + i in
    Bytes.set (chunk t (a lsr chunk_bits)) (a land (chunk_size - 1)) (Bytes.get data i)
  done

(* 32-bit accesses that stay inside one chunk (every 4-aligned address,
   i.e. all array elements) go straight to the chunk without building an
   intermediate [Bytes.t]. *)

let offset_mask = chunk_size - 1

let read_i32 t addr =
  let off = addr land offset_mask in
  if off <= chunk_size - 4 then begin
    check_range t addr 4;
    t.reads <- t.reads + 4;
    Bytes.get_int32_le (chunk t (addr lsr chunk_bits)) off
  end
  else
    let b = read_bytes t addr 4 in
    Bytes.get_int32_le b 0

let write_i32 t addr v =
  let off = addr land offset_mask in
  if off <= chunk_size - 4 then begin
    check_range t addr 4;
    t.writes <- t.writes + 4;
    Bytes.set_int32_le (chunk t (addr lsr chunk_bits)) off v
  end
  else begin
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 v;
    write_bytes t addr b
  end

let read_f32 t addr = Int32.float_of_bits (read_i32 t addr)
let write_f32 t addr v = write_i32 t addr (Int32.bits_of_float v)

let burst_latency t ~bytes =
  if bytes < 0 then invalid_arg "Memory.burst_latency: negative size";
  t.config.access_latency_ps
  + int_of_float (Float.round (float_of_int bytes /. t.config.bytes_per_ps))

let reads t = t.reads
let writes t = t.writes
