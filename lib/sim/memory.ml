module Arena = Tdo_util.Arena

type config = {
  size_bytes : int;
  access_latency_ps : Time_base.ps;
  bytes_per_ps : float;
}

let default_config =
  {
    size_bytes = 2 * 1024 * 1024 * 1024;
    access_latency_ps = 50 * Time_base.ps_per_ns;
    bytes_per_ps = 7.46e9 /. 1e12;
  }

let chunk_bits = 16
let chunk_size = 1 lsl chunk_bits

(* Direct-mapped chunk cache: a kernel like GEMM streams three arrays
   at once, and with a single cached chunk the A/B/C accesses evict
   each other every instruction, sending almost everything down the
   allocating slow path. Eight slots keep every active region's chunk
   resident at a cost of one extra indexed load on the fast path. *)
let slot_bits = 3
let slots = 1 lsl slot_bits
let slot_mask = slots - 1

type t = {
  config : config;
  limit : int;  (** [config.size_bytes], one field load on the fast path *)
  scratch : Arena.t option;  (** chunk backing comes from here when present *)
  chunks : (int, Bytes.t) Hashtbl.t;
  mutable reads : int;
  mutable writes : int;
  slot_idx : int array;  (** chunk index cached in each slot, -1 when empty *)
  slot_chunk : Bytes.t array;
}

let no_chunk = Bytes.create 0

let create ?(config = default_config) ?scratch () =
  if config.size_bytes <= 0 then invalid_arg "Memory.create: size must be positive";
  {
    config;
    limit = config.size_bytes;
    scratch;
    chunks = Hashtbl.create 64;
    reads = 0;
    writes = 0;
    slot_idx = Array.make slots (-1);
    slot_chunk = Array.make slots no_chunk;
  }

let config t = t.config

let check_range t addr len =
  if addr < 0 || len < 0 || addr + len > t.config.size_bytes then
    invalid_arg (Printf.sprintf "Memory: access [%d, %d) out of range" addr (addr + len))

let chunk t idx =
  let slot = idx land slot_mask in
  if Array.unsafe_get t.slot_idx slot = idx then Array.unsafe_get t.slot_chunk slot
  else
    let c =
      match Hashtbl.find t.chunks idx with
      | c -> c
      | exception Not_found ->
          let c =
            match t.scratch with
            | None -> Bytes.make chunk_size '\000'
            | Some arena ->
                (* pooled blocks come back dirty; memory reads as zero
                   until written, so clear before first use *)
                let c = Arena.bytes arena chunk_size in
                Bytes.fill c 0 chunk_size '\000';
                c
          in
          Hashtbl.add t.chunks idx c;
          c
    in
    Array.unsafe_set t.slot_idx slot idx;
    Array.unsafe_set t.slot_chunk slot c;
    c

let read_u8 t addr =
  check_range t addr 1;
  t.reads <- t.reads + 1;
  Char.code (Bytes.get (chunk t (addr lsr chunk_bits)) (addr land (chunk_size - 1)))

let write_u8 t addr v =
  check_range t addr 1;
  if v < 0 || v > 255 then invalid_arg "Memory.write_u8: byte out of range";
  t.writes <- t.writes + 1;
  Bytes.set (chunk t (addr lsr chunk_bits)) (addr land (chunk_size - 1)) (Char.chr v)

let read_bytes t addr len =
  check_range t addr len;
  t.reads <- t.reads + len;
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    let a = addr + i in
    Bytes.set out i (Bytes.get (chunk t (a lsr chunk_bits)) (a land (chunk_size - 1)))
  done;
  out

let write_bytes t addr data =
  let len = Bytes.length data in
  check_range t addr len;
  t.writes <- t.writes + len;
  for i = 0 to len - 1 do
    let a = addr + i in
    Bytes.set (chunk t (a lsr chunk_bits)) (a land (chunk_size - 1)) (Bytes.get data i)
  done

(* 32-bit accesses that stay inside one chunk (every 4-aligned address,
   i.e. all array elements) go straight to the chunk without building an
   intermediate [Bytes.t]. *)

let offset_mask = chunk_size - 1

let read_i32 t addr =
  let off = addr land offset_mask in
  if off <= chunk_size - 4 then begin
    check_range t addr 4;
    t.reads <- t.reads + 4;
    Bytes.get_int32_le (chunk t (addr lsr chunk_bits)) off
  end
  else
    let b = read_bytes t addr 4 in
    Bytes.get_int32_le b 0

let write_i32 t addr v =
  let off = addr land offset_mask in
  if off <= chunk_size - 4 then begin
    check_range t addr 4;
    t.writes <- t.writes + 4;
    Bytes.set_int32_le (chunk t (addr lsr chunk_bits)) off v
  end
  else begin
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 v;
    write_bytes t addr b
  end

(* The f32 accessors are the executor's hottest operations. The slow
   path funnels through the i32 accessors (chunk lookup, range errors,
   sub-word split); the fast path below hits when the access lands in
   the cached chunk, and is written as one composed expression so the
   intermediate int32 never materialises — inlined at the call site,
   neither does the float, making streaming f32 access allocation-free. *)

let read_f32_slow t addr = Int32.float_of_bits (read_i32 t addr)

let[@inline always] read_f32 t addr =
  let off = addr land offset_mask in
  let idx = addr lsr chunk_bits in
  let slot = idx land slot_mask in
  if
    Array.unsafe_get t.slot_idx slot = idx
    && off <= chunk_size - 4
    && addr >= 0
    && addr + 4 <= t.limit
  then begin
    t.reads <- t.reads + 4;
    Int32.float_of_bits (Bytes.get_int32_le (Array.unsafe_get t.slot_chunk slot) off)
  end
  else read_f32_slow t addr

let write_f32_slow t addr v = write_i32 t addr (Int32.bits_of_float v)

let[@inline always] write_f32 t addr v =
  let off = addr land offset_mask in
  let idx = addr lsr chunk_bits in
  let slot = idx land slot_mask in
  if
    Array.unsafe_get t.slot_idx slot = idx
    && off <= chunk_size - 4
    && addr >= 0
    && addr + 4 <= t.limit
  then begin
    t.writes <- t.writes + 4;
    Bytes.set_int32_le (Array.unsafe_get t.slot_chunk slot) off (Int32.bits_of_float v)
  end
  else write_f32_slow t addr v

let burst_latency t ~bytes =
  if bytes < 0 then invalid_arg "Memory.burst_latency: negative size";
  t.config.access_latency_ps
  + int_of_float (Float.round (float_of_int bytes /. t.config.bytes_per_ps))

let reads t = t.reads
let writes t = t.writes
