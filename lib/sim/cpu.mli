(** In-order timing model of the host core (Arm-A7-class, Table I).

    The IR executor drives the model by issuing one instruction at a
    time ({!issue}); the model charges a per-class base cost, sends
    loads and stores through the data-cache hierarchy, and accumulates
    cycles, instruction counts, and region-of-interest (ROI) windows —
    the same quantities the paper profiles with gem5 ROI markers.

    Instruction fetch is folded into the per-class base cost (the L1I
    hit rate of these dense loop kernels is ~100%), which keeps the
    model fast without changing kernel-to-kernel comparisons. *)

type iclass =
  | Int_alu
  | Int_mul
  | Fp_add
  | Fp_mul
  | Fp_mac
  | Fp_div
  | Load
  | Store
  | Branch
  | Call
  | Ret

type config = {
  name : string;
  freq_hz : float;
  class_base_cycles : iclass -> int;
}

val arm_a7 : config
(** 1.2 GHz in-order core with A7-like latencies. *)

type t

val create : ?config:config -> l1d:Cache.t -> unit -> t
val config : t -> config

val issue : t -> ?addr:int -> iclass -> unit
(** Account one dynamic instruction. [addr] is required for [Load] and
    [Store] (raises [Invalid_argument] if missing) and ignored
    otherwise. *)

val issue_at : t -> addr:int -> iclass -> unit
(** {!issue} for [Load]/[Store] with a mandatory address — the
    executor's hot path, avoiding the [Some addr] box per charged
    memory access. Raises [Invalid_argument] for non-memory classes. *)

val issue_many : t -> iclass -> int -> unit
(** Account [count] identical non-memory instructions in one step (used
    for modelled fixed-cost loops like the driver's set/way cache
    flush). Raises [Invalid_argument] for [Load]/[Store]. *)

val stall_ps : t -> Time_base.ps -> unit
(** Advance time without retiring instructions — e.g. spinning on the
    accelerator status register or waiting out a cache flush. *)

val cycles : t -> int
val instructions : t -> int
val time_ps : t -> Time_base.ps
val class_count : t -> iclass -> int

(** ROI markers (paper Section IV: "Dynamic instruction count and
    run-time are profiled in Gem5 by inserting ROI markers"). Multiple
    begin/end windows accumulate. *)

val roi_begin : t -> unit
(** Raises [Failure] if a window is already open. *)

val roi_end : t -> unit
(** Raises [Failure] if no window is open. *)

type roi = { roi_instructions : int; roi_cycles : int; roi_time_ps : Time_base.ps }

val roi : t -> roi
(** Accumulated ROI totals over all closed windows. *)
