module Table1 = Tdo_energy.Table1
module Time_base = Tdo_sim.Time_base

type device_class = Pcm_crossbar | Digital_tile | Host_blas

let class_name = function
  | Pcm_crossbar -> "pcm"
  | Digital_tile -> "digital"
  | Host_blas -> "host"

let class_of_name = function
  | "pcm" -> Ok Pcm_crossbar
  | "digital" -> Ok Digital_tile
  | "host" -> Ok Host_blas
  | other ->
      Error (Printf.sprintf "unknown device class %S (expected pcm, digital or host)" other)

type mode = Memory_mode | Compute_mode

type profile = {
  name : string;
  cls : device_class;
  dual_mode : bool;
  compute_latency_ps : int;
  write_latency_per_row_ps : int;
  cpu_ps_per_mac : int;
  conversion_latency_ps : int;
  energy : Table1.t;
  wears : bool;
  cell_endurance : float;
  memory_bw_bytes_per_us : float;
}

(* ~3 VFP cycles per MAC at the A7's 1.2 GHz — the same rate the
   scheduler's interpreter fallback has always charged. *)
let host_ps_per_mac = 2500

let pcm =
  {
    name = "pcm";
    cls = Pcm_crossbar;
    dual_mode = false;
    compute_latency_ps = Time_base.ps_per_us;
    write_latency_per_row_ps = 25 * Time_base.ps_per_us / 10;
    cpu_ps_per_mac = host_ps_per_mac;
    conversion_latency_ps = 0;
    energy = Table1.ibm_pcm_a7;
    wears = true;
    cell_endurance = 1e7;
    memory_bw_bytes_per_us = 0.0;
  }

let digital =
  {
    name = "digital";
    cls = Digital_tile;
    dual_mode = false;
    compute_latency_ps =
      int_of_float (Table1.digital_cim_tile.Table1.compute_latency_s *. 1e12);
    write_latency_per_row_ps =
      int_of_float (Table1.digital_cim_tile.Table1.write_latency_s *. 1e12);
    cpu_ps_per_mac = host_ps_per_mac;
    conversion_latency_ps = 0;
    energy = Table1.digital_cim_tile;
    wears = false;
    (* SRAM cells: endurance is effectively unbounded; the Eq. 1
       tracker still wants a finite number *)
    cell_endurance = 1e16;
    memory_bw_bytes_per_us = 0.0;
  }

let host =
  {
    name = "host";
    cls = Host_blas;
    dual_mode = false;
    compute_latency_ps = 0;
    write_latency_per_row_ps = 0;
    cpu_ps_per_mac = host_ps_per_mac;
    conversion_latency_ps = 0;
    energy = Table1.ibm_pcm_a7;
    wears = false;
    cell_endurance = 1e16;
    memory_bw_bytes_per_us = 0.0;
  }

(* "Be CIM or Be Memory": the role switch reprograms the tile's
   peripheral circuitry (drivers, S&H, ADC muxing) — charged at 10 us,
   i.e. four full row-programming times. *)
let dual =
  {
    pcm with
    name = "dual";
    dual_mode = true;
    conversion_latency_ps = 10 * Time_base.ps_per_us;
    (* While drafted for compute the tile stops serving its memory
       role; every drafted microsecond displaces one DDR3-1600-ish
       channel's worth of traffic, which the scheduler charges as
       displaced bandwidth. *)
    memory_bw_bytes_per_us = 12800.0;
  }

let of_name = function
  | "pcm" -> Ok pcm
  | "digital" -> Ok digital
  | "host" -> Ok host
  | "dual" -> Ok dual
  | other ->
      Error
        (Printf.sprintf "unknown device profile %S (expected pcm, digital, host or dual)"
           other)

let parse_fleet spec =
  let parse_entry s =
    match String.split_on_char ':' (String.trim s) with
    | [ name ] | [ name; "" ] -> Result.map (fun p -> (p, 1)) (of_name name)
    | [ name; count ] -> (
        match int_of_string_opt count with
        | Some n when n >= 1 -> Result.map (fun p -> (p, n)) (of_name name)
        | Some _ | None ->
            Error (Printf.sprintf "fleet spec: bad count %S for %s" count name))
    | _ -> Error (Printf.sprintf "fleet spec: cannot parse entry %S" s)
  in
  let rec go acc = function
    | [] ->
        let fleet = List.concat_map (fun (p, n) -> List.init n (fun _ -> p)) (List.rev acc) in
        if fleet = [] then Error "fleet spec: empty" else Ok fleet
    | entry :: rest -> (
        match parse_entry entry with
        | Ok pair -> go (pair :: acc) rest
        | Error _ as e -> e)
  in
  go [] (String.split_on_char ',' spec |> List.filter (fun s -> String.trim s <> ""))

let describe_fleet fleet =
  let rec group = function
    | [] -> []
    | p :: rest ->
        let same, rest = List.partition (fun q -> q.name = p.name) rest in
        (* partition rather than span: fleet order within a class does
           not matter for the description *)
        (p.name, 1 + List.length same) :: group rest
  in
  group fleet
  |> List.map (fun (name, n) -> Printf.sprintf "%s:%d" name n)
  |> String.concat ","

let platform_config ?(base = Tdo_runtime.Platform.default_config) profile =
  match profile.cls with
  | Pcm_crossbar | Host_blas -> base
  | Digital_tile ->
      let engine = base.Tdo_runtime.Platform.engine in
      let xbar =
        { engine.Tdo_cimacc.Micro_engine.xbar with Tdo_pcm.Crossbar.noise_sigma = None }
      in
      {
        base with
        Tdo_runtime.Platform.engine =
          {
            engine with
            Tdo_cimacc.Micro_engine.xbar;
            compute_latency_ps = profile.compute_latency_ps;
            write_latency_per_row_ps = profile.write_latency_per_row_ps;
          };
      }

let ps_per_cycle = 1e12 /. 1.2e9
