(** Device classes of the heterogeneous accelerator fleet.

    TDO-CIM's original runtime assumes every offload target is the same
    analog PCM crossbar. This module is the abstraction the serving
    layer, tuner and kernel cache share instead: a {e device class}
    names a compute substrate with its own latency, energy, precision
    and endurance model, and a {e profile} instantiates one fleet
    member of that class.

    Three classes exist:

    - {!Pcm_crossbar} — the paper's analog PCM tile: Kirchhoff-sum
      GEMV in 1 us, 2.5 us/row programming, cells that drift and wear
      out (endurance terms apply to placement).
    - {!Digital_tile} — a digital SRAM CIM tile (CIMFlow-style): exact
      integer MAC arrays, ~4x slower per full GEMV and ~10x the compute
      energy, but SRAM-priced writes (20 ns/row) and {e no} drift or
      wear. It computes over the same 8-bit quantised codes as the
      analog tile, so results are bit-identical — "precision" shows up
      as immunity to analog noise and drift, not different numerics,
      which keeps the golden oracle comparable across classes.
    - {!Host_blas} — the host interpreter promoted to a first-class
      placement target: functionally exact, priced with the calibrated
      MAC-rate cost curve, no crossbar state at all.

    A profile may additionally be {e dual-mode} ("Be CIM or Be
    Memory"): the tile serves as plain memory while idle and is
    converted to a compute role only under sustained load, paying
    {!profile.conversion_latency_ps} per switch. Conversions are
    counted by the scheduler and surfaced in telemetry. *)

type device_class = Pcm_crossbar | Digital_tile | Host_blas

val class_name : device_class -> string
(** ["pcm"], ["digital"], ["host"] — the spelling used by fleet specs,
    tuning-database entries and cache keys. *)

val class_of_name : string -> (device_class, string) result

type mode = Memory_mode | Compute_mode
(** Role of a dual-mode tile. Non-dual profiles are always
    [Compute_mode]. *)

type profile = {
  name : string;
      (** fleet-spec spelling of this profile: the class name, or
          ["dual"] for a dual-mode PCM tile — what per-class telemetry
          groups by *)
  cls : device_class;
      (** compute substrate; drives cache keys, tuned-config lookup
          and cost estimation. A dual-mode tile's class is
          {!Pcm_crossbar}: once converted it {e is} a crossbar. *)
  dual_mode : bool;  (** starts as plain memory, convertible *)
  compute_latency_ps : int;  (** full-array GEMV *)
  write_latency_per_row_ps : int;
  cpu_ps_per_mac : int;  (** {!Host_blas} service rate *)
  conversion_latency_ps : int;  (** dual-mode role switch cost *)
  energy : Tdo_energy.Table1.t;  (** per-class pricing of served work *)
  wears : bool;
      (** endurance/write-pressure terms apply to placement on this
          profile ({!Pcm_crossbar} only) *)
  cell_endurance : float;  (** Eq. 1 parameter; infinite-ish when [not wears] *)
  memory_bw_bytes_per_us : float;
      (** memory-role bandwidth a dual-mode tile gives up per
          microsecond it spends drafted into the compute role — the
          displaced-traffic charge ("Be CIM or Be Memory"); [0] for
          profiles that never serve as memory *)
}

val pcm : profile
(** The paper's analog crossbar — the class every pre-fleet device
    implicitly was. *)

val digital : profile
val host : profile

val dual : profile
(** A {!pcm} tile with [dual_mode = true]: plain memory until the
    scheduler converts it (10 us per switch). *)

val of_name : string -> (profile, string) result
(** ["pcm"], ["digital"], ["host"] or ["dual"]. *)

val parse_fleet : string -> (profile list, string) result
(** Parse a fleet spec like ["pcm:2,digital:2,dual:1,host:1"] into the
    expanded per-device profile list (order preserved, counts >= 1).
    An entry without a count means one device. *)

val describe_fleet : profile list -> string
(** Canonical spec string of a fleet ([parse_fleet]'s inverse up to
    run-length grouping of adjacent equal profiles). *)

val platform_config :
  ?base:Tdo_runtime.Platform.config -> profile -> Tdo_runtime.Platform.config
(** [base] (default {!Tdo_runtime.Platform.default_config}) with the
    micro-engine's timing swapped for the profile's class: digital
    tiles get SRAM-style row writes and the slower adder-tree GEMV,
    and their crossbars are forced ideal ([noise_sigma = None]) —
    digital MAC arrays have no analog noise path to inject into.
    {!Pcm_crossbar} profiles return [base] unchanged; {!Host_blas}
    keeps a platform only for interface uniformity (it never launches
    jobs). *)

val ps_per_cycle : float
(** Host cycles (1.2 GHz) to picoseconds — the unit bridge between
    {!Tdo_tune.Cost_model} predictions and the scheduler's virtual
    clock. *)
