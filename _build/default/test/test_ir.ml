open Tdo_ir
module Ast = Tdo_lang.Ast
module Parser = Tdo_lang.Parser
module Interp = Tdo_lang.Interp
module Platform = Tdo_runtime.Platform
module Sim = Tdo_sim
module Mat = Tdo_linalg.Mat
module Blas_ref = Tdo_linalg.Blas_ref
module Prng = Tdo_util.Prng

let gemm_src m n k =
  Printf.sprintf
    {|
void gemm(float alpha, float beta, float C[%d][%d], float A[%d][%d], float B[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      C[i][j] *= beta;
      for (int k = 0; k < %d; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
|}
    m n m k k n m n k

let small_platform () =
  let engine =
    {
      Tdo_cimacc.Micro_engine.default_config with
      Tdo_cimacc.Micro_engine.xbar =
        { Tdo_pcm.Crossbar.default_config with Tdo_pcm.Crossbar.rows = 64; cols = 64 };
    }
  in
  Platform.create ~config:{ Platform.default_config with Platform.engine } ()

let test_lower_roi_markers () =
  let f = Lower.func (Parser.parse_func (gemm_src 4 4 4)) in
  (match f.Ir.body with
  | Ir.Roi_begin :: _ -> ()
  | _ -> Alcotest.fail "ROI begin missing");
  (match List.rev f.Ir.body with
  | Ir.Roi_end :: _ -> ()
  | _ -> Alcotest.fail "ROI end missing");
  Alcotest.(check bool) "no cim calls before tactics" false (Ir.contains_cim_calls f)

let test_lower_rejects_ill_typed () =
  let f = Parser.parse_func "void f() { x = 1.0; }" in
  Alcotest.(check bool) "type error propagates" true
    (try
       ignore (Lower.func f);
       false
     with Tdo_lang.Typecheck.Type_error _ -> true)

let run_gemm_exec ~m ~n ~k ~alpha ~beta ~seed =
  let src = gemm_src m n k in
  let ast = Parser.parse_func src in
  let f = Lower.func ast in
  let g = Prng.create ~seed in
  let a = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
  let c = Mat.random g ~rows:m ~cols:n ~lo:(-1.0) ~hi:1.0 in
  let arr_c_exec = Interp.arr_of_mat c in
  let platform = small_platform () in
  let args mk_c =
    [
      ("alpha", Interp.Vfloat alpha);
      ("beta", Interp.Vfloat beta);
      ("C", Interp.Varray mk_c);
      ("A", Interp.Varray (Interp.arr_of_mat a));
      ("B", Interp.Varray (Interp.arr_of_mat b));
    ]
  in
  let metrics = Exec.run f ~platform ~args:(args arr_c_exec) in
  (* golden model *)
  let arr_c_interp = Interp.arr_of_mat c in
  Interp.run ast ~args:(args arr_c_interp);
  (platform, metrics, arr_c_exec, arr_c_interp)

let test_exec_matches_interpreter_bitexact () =
  let _, metrics, c_exec, c_interp = run_gemm_exec ~m:6 ~n:5 ~k:7 ~alpha:1.5 ~beta:0.5 ~seed:71 in
  Alcotest.(check (float 0.0)) "bit-exact against the interpreter" 0.0
    (Mat.max_abs_diff (Interp.mat_of_arr c_exec) (Interp.mat_of_arr c_interp));
  Alcotest.(check bool) "host-only" false metrics.Exec.used_cim

let test_exec_instruction_accounting () =
  let platform, metrics, _, _ = run_gemm_exec ~m:6 ~n:5 ~k:7 ~alpha:1.0 ~beta:1.0 ~seed:72 in
  let cpu = Platform.cpu platform in
  Alcotest.(check int) "one MAC per inner iteration" (6 * 5 * 7)
    (Sim.Cpu.class_count cpu Sim.Cpu.Fp_mac);
  Alcotest.(check bool) "instructions dominated by the nest" true
    (metrics.Exec.roi_instructions > 6 * 5 * 7 * 5);
  Alcotest.(check bool) "cycles accumulated" true (metrics.Exec.roi_cycles > 0);
  Alcotest.(check bool) "time accumulated" true (metrics.Exec.roi_time_ps > 0)

let test_exec_cache_locality_visible () =
  (* summing B row-major vs column-major: the strided version must be
     slower on the same platform model *)
  let run src =
    let f = Lower.func (Parser.parse_func src) in
    let platform = small_platform () in
    let b = Interp.make_array ~dims:[ 128; 128 ] in
    let s = Interp.make_array ~dims:[ 1 ] in
    let m =
      Exec.run f ~platform ~args:[ ("B", Interp.Varray b); ("s", Interp.Varray s) ]
    in
    m.Exec.roi_time_ps
  in
  let row_major =
    run
      {|
void sum(float B[128][128], float s[1]) {
  for (int i = 0; i < 128; i++)
    for (int j = 0; j < 128; j++)
      s[0] += B[i][j];
}
|}
  in
  let col_major =
    run
      {|
void sum(float B[128][128], float s[1]) {
  for (int j = 0; j < 128; j++)
    for (int i = 0; i < 128; i++)
      s[0] += B[i][j];
}
|}
  in
  Alcotest.(check bool) "column-major traversal slower" true (col_major > row_major)

(* hand-written offloaded IR, the Listing-1 shape *)
let offloaded_gemm ~m ~n ~k =
  let open Ir in
  let ref_whole array rows cols = mat_ref_whole ~array ~rows ~cols () in
  {
    name = "gemm_cim";
    params =
      [
        { Ast.pname = "alpha"; ptyp = Ast.Tfloat; dims = [] };
        { Ast.pname = "beta"; ptyp = Ast.Tfloat; dims = [] };
        { Ast.pname = "C"; ptyp = Ast.Tfloat; dims = [ m; n ] };
        { Ast.pname = "A"; ptyp = Ast.Tfloat; dims = [ m; k ] };
        { Ast.pname = "B"; ptyp = Ast.Tfloat; dims = [ k; n ] };
      ];
    body =
      [
        Roi_begin;
        Call Cim_init;
        Call (Cim_alloc { array = "A" });
        Call (Cim_alloc { array = "B" });
        Call (Cim_alloc { array = "C" });
        Call (Cim_h2d { array = "A" });
        Call (Cim_h2d { array = "B" });
        Call (Cim_h2d { array = "C" });
        Call
          (Cim_gemm
             {
               m;
               n;
               k;
               alpha = Ast.Var "alpha";
               beta = Ast.Var "beta";
               a = ref_whole "A" m k;
               b = ref_whole "B" k n;
               c = ref_whole "C" m n;
               pin = Pin_a;
             });
        Call (Cim_d2h { array = "C" });
        Call (Cim_free { array = "A" });
        Call (Cim_free { array = "B" });
        Call (Cim_free { array = "C" });
        Roi_end;
      ];
  }

let test_exec_offloaded_gemm () =
  let m = 12 and n = 10 and k = 9 in
  let f = offloaded_gemm ~m ~n ~k in
  let g = Prng.create ~seed:73 in
  let a = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
  let c = Mat.random g ~rows:m ~cols:n ~lo:(-1.0) ~hi:1.0 in
  let arr_c = Interp.arr_of_mat c in
  let platform = small_platform () in
  let metrics =
    Exec.run f ~platform
      ~args:
        [
          ("alpha", Interp.Vfloat 1.0);
          ("beta", Interp.Vfloat 0.5);
          ("C", Interp.Varray arr_c);
          ("A", Interp.Varray (Interp.arr_of_mat a));
          ("B", Interp.Varray (Interp.arr_of_mat b));
        ]
  in
  Alcotest.(check bool) "used cim" true metrics.Exec.used_cim;
  Alcotest.(check int) "one launch" 1 metrics.Exec.cim_launches;
  let expected = Mat.copy c in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.5 ~a ~b ~c:expected ();
  Alcotest.(check bool) "offloaded result close" true
    (Mat.max_abs_diff expected (Interp.mat_of_arr arr_c) < 0.3)

let test_exec_offload_needs_malloc () =
  let f =
    {
      Ir.name = "bad";
      params = [ { Ast.pname = "A"; ptyp = Ast.Tfloat; dims = [ 4; 4 ] } ];
      body = [ Ir.Call Ir.Cim_init; Ir.Call (Ir.Cim_h2d { array = "A" }) ];
    }
  in
  let platform = small_platform () in
  Alcotest.(check bool) "missing malloc raises" true
    (try
       ignore
         (Exec.run f ~platform ~args:[ ("A", Interp.Varray (Interp.make_array ~dims:[ 4; 4 ])) ]);
       false
     with Exec.Exec_error _ -> true)

let test_exec_offload_needs_init () =
  let f =
    {
      Ir.name = "bad";
      params = [ { Ast.pname = "A"; ptyp = Ast.Tfloat; dims = [ 4; 4 ] } ];
      body = [ Ir.Call (Ir.Cim_alloc { array = "A" }) ];
    }
  in
  let platform = small_platform () in
  Alcotest.(check bool) "missing init raises" true
    (try
       ignore
         (Exec.run f ~platform ~args:[ ("A", Interp.Varray (Interp.make_array ~dims:[ 4; 4 ])) ]);
       false
     with Exec.Exec_error _ -> true)

let test_ir_pp_listing1_shape () =
  let f = offloaded_gemm ~m:8 ~n:8 ~k:8 in
  let printed = Format.asprintf "%a" Ir.pp_func f in
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " printed") true (contains printed needle))
    [ "polly_cimInit"; "polly_cimMalloc"; "polly_cimBlasSGemm"; "polly_cimDevToHost" ]

let qcheck_exec_interp_equivalence =
  QCheck.Test.make ~name:"executor is semantics-preserving vs the interpreter" ~count:10
    QCheck.small_int (fun seed ->
      let _, _, c_exec, c_interp =
        run_gemm_exec ~m:(3 + (seed mod 4)) ~n:(2 + (seed mod 5)) ~k:(2 + (seed mod 6))
          ~alpha:1.0 ~beta:1.0 ~seed:(seed + 900)
      in
      Mat.max_abs_diff (Interp.mat_of_arr c_exec) (Interp.mat_of_arr c_interp) = 0.0)

let suites =
  [
    ( "ir.lower",
      [
        Alcotest.test_case "roi markers" `Quick test_lower_roi_markers;
        Alcotest.test_case "rejects ill-typed" `Quick test_lower_rejects_ill_typed;
      ] );
    ( "ir.exec",
      [
        Alcotest.test_case "matches interpreter" `Quick test_exec_matches_interpreter_bitexact;
        Alcotest.test_case "instruction accounting" `Quick test_exec_instruction_accounting;
        Alcotest.test_case "cache locality" `Quick test_exec_cache_locality_visible;
        Alcotest.test_case "offloaded gemm" `Quick test_exec_offloaded_gemm;
        Alcotest.test_case "offload needs malloc" `Quick test_exec_offload_needs_malloc;
        Alcotest.test_case "offload needs init" `Quick test_exec_offload_needs_init;
        Alcotest.test_case "Listing-1 printing" `Quick test_ir_pp_listing1_shape;
        QCheck_alcotest.to_alcotest qcheck_exec_interp_equivalence;
      ] );
  ]

(* ---------- executor edge cases ---------- *)

let exec_src src args =
  let f = Lower.func (Parser.parse_func src) in
  let platform = small_platform () in
  ignore (Exec.run f ~platform ~args)

let test_exec_loop_step () =
  let a = Interp.make_array ~dims:[ 16 ] in
  exec_src "void f(float A[16]) { for (int i = 0; i < 16; i += 4) A[i] = 1.0; }"
    [ ("A", Interp.Varray a) ];
  Alcotest.(check (float 0.0)) "step hits 0" 1.0 a.Interp.data.(0);
  Alcotest.(check (float 0.0)) "step hits 12" 1.0 a.Interp.data.(12);
  Alcotest.(check (float 0.0)) "step skips 2" 0.0 a.Interp.data.(2)

let test_exec_empty_loop () =
  let a = Interp.make_array ~dims:[ 4 ] in
  exec_src "void f(float A[4]) { for (int i = 4; i < 4; i++) A[0] = 9.0; }"
    [ ("A", Interp.Varray a) ];
  Alcotest.(check (float 0.0)) "zero-trip loop runs nothing" 0.0 a.Interp.data.(0)

let test_exec_neg_and_div () =
  let a = Interp.make_array ~dims:[ 1 ] in
  a.Interp.data.(0) <- 8.0;
  exec_src "void f(float A[1]) { A[0] = -A[0] / 4.0; }" [ ("A", Interp.Varray a) ];
  Alcotest.(check (float 1e-7)) "negation and division" (-2.0) a.Interp.data.(0)

let test_exec_scalar_param_types () =
  let a = Interp.make_array ~dims:[ 4 ] in
  exec_src "void f(float A[4], int off, float v) { A[off] = v; }"
    [ ("A", Interp.Varray a); ("off", Interp.Vint 2); ("v", Interp.Vfloat 7.5) ];
  Alcotest.(check (float 0.0)) "int and float scalars bound" 7.5 a.Interp.data.(2)

let test_exec_out_of_bounds () =
  Alcotest.(check bool) "runtime bounds check" true
    (try
       exec_src "void f(float A[4]) { for (int i = 0; i < 8; i++) A[i] = 0.0; }"
         [ ("A", Interp.Varray (Interp.make_array ~dims:[ 4 ])) ];
       false
     with Exec.Exec_error _ -> true)

let test_exec_dims_mismatch () =
  Alcotest.(check bool) "argument shape checked" true
    (try
       exec_src "void f(float A[4]) { A[0] = 1.0; }"
         [ ("A", Interp.Varray (Interp.make_array ~dims:[ 8 ])) ];
       false
     with Exec.Exec_error _ -> true)

let exec_edge_suite =
  ( "ir.exec_edges",
    [
      Alcotest.test_case "loop step" `Quick test_exec_loop_step;
      Alcotest.test_case "zero-trip loop" `Quick test_exec_empty_loop;
      Alcotest.test_case "neg / div" `Quick test_exec_neg_and_div;
      Alcotest.test_case "scalar params" `Quick test_exec_scalar_param_types;
      Alcotest.test_case "out of bounds" `Quick test_exec_out_of_bounds;
      Alcotest.test_case "dims mismatch" `Quick test_exec_dims_mismatch;
    ] )

let suites = suites @ [ exec_edge_suite ]
