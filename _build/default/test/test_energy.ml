module Table1 = Tdo_energy.Table1
module Ledger = Tdo_energy.Ledger
module Platform = Tdo_runtime.Platform
module Api = Tdo_runtime.Api
module Mat = Tdo_linalg.Mat
module Prng = Tdo_util.Prng
module Sim = Tdo_sim

let t1 = Table1.ibm_pcm_a7

let test_table1_constants () =
  (* the exact Table-I numbers *)
  Alcotest.(check (float 0.0)) "compute 200fJ/MAC" 200e-15 t1.Table1.crossbar_compute_j_per_mac;
  Alcotest.(check (float 0.0)) "write 200pJ/byte" 200e-12 t1.Table1.crossbar_write_j_per_byte;
  Alcotest.(check (float 0.0)) "mixed signal 3.9nJ" 3.9e-9 t1.Table1.mixed_signal_j_per_full_gemv;
  Alcotest.(check (float 0.0)) "buffers 5.4pJ/B" 5.4e-12 t1.Table1.buffer_j_per_byte;
  Alcotest.(check (float 0.0)) "weighted sum 40pJ" 40e-12 t1.Table1.weighted_sum_j_per_gemv;
  Alcotest.(check (float 0.0)) "alu 2.11pJ" 2.11e-12 t1.Table1.alu_j_per_op;
  Alcotest.(check (float 0.0)) "dma/engine 0.78nJ" 0.78e-9 t1.Table1.dma_engine_j_per_full_gemv;
  Alcotest.(check (float 0.0)) "host 128pJ/inst" 128e-12 t1.Table1.host_j_per_instruction;
  Alcotest.(check (float 0.0)) "compute 1us" 1e-6 t1.Table1.compute_latency_s;
  Alcotest.(check (float 0.0)) "write 2.5us/row" 2.5e-6 t1.Table1.write_latency_s

let test_ledger_zero_on_idle_platform () =
  let p = Platform.create () in
  let b = Ledger.collect p ~host_instructions:1000 in
  Alcotest.(check (float 1e-18)) "host term" (1000.0 *. 128e-12) b.Ledger.host_j;
  Alcotest.(check (float 0.0)) "no accelerator energy" 0.0 (Ledger.accelerator_j b);
  Alcotest.(check (float 1e-18)) "total = host" b.Ledger.host_j (Ledger.total_j b)

let test_ledger_crossbar_terms () =
  (* one known offload: write term must equal bytes x 200pJ, compute
     term MACs x 200fJ *)
  let p = Platform.create () in
  let api = Api.init p in
  let g = Prng.create ~seed:91 in
  let n = 16 in
  let alloc () = Result.get_ok (Api.malloc api ~bytes:(4 * n * n)) in
  let buf_a = alloc () and buf_b = alloc () and buf_c = alloc () in
  Api.host_to_dev api ~src:(Mat.random g ~rows:n ~cols:n ~lo:(-1.0) ~hi:1.0)
    ~dst:(Api.view ~ld:n buf_a);
  Api.host_to_dev api ~src:(Mat.random g ~rows:n ~cols:n ~lo:(-1.0) ~hi:1.0)
    ~dst:(Api.view ~ld:n buf_b);
  (match
     Api.sgemm api ~m:n ~n ~k:n ~alpha:1.0 ~a:(Api.view ~ld:n buf_a)
       ~b:(Api.view ~ld:n buf_b) ~beta:0.0 ~c:(Api.view ~ld:n buf_c) ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sgemm: %s" e);
  let b = Ledger.collect p ~host_instructions:0 in
  Alcotest.(check (float 1e-15)) "write energy = n*n bytes x 200pJ"
    (float_of_int (n * n) *. 200e-12)
    b.Ledger.crossbar_write_j;
  Alcotest.(check (float 1e-15)) "compute energy = n^3 MACs x 200fJ"
    (float_of_int (n * n * n) *. 200e-15)
    b.Ledger.crossbar_compute_j;
  (* n gemvs, 2 conversions per active column each *)
  let conversions = float_of_int (n * 2 * n) in
  Alcotest.(check (float 1e-15)) "mixed signal scales per conversion"
    (conversions *. (3.9e-9 /. 512.0))
    b.Ledger.mixed_signal_j;
  Alcotest.(check bool) "buffers charged" true (b.Ledger.buffers_j > 0.0);
  Alcotest.(check bool) "digital charged" true (b.Ledger.digital_j > 0.0);
  Alcotest.(check bool) "dma/engine charged" true (b.Ledger.dma_engine_j > 0.0);
  Alcotest.(check (float 1e-18)) "total is the sum" (Ledger.total_j b)
    (b.Ledger.host_j +. Ledger.accelerator_j b)

let test_edp () =
  Alcotest.(check (float 1e-12)) "edp = E x t" 6e-9
    (Ledger.edp ~energy_j:3e-6 ~time_s:2e-3)

let test_table1_rows_printable () =
  let rows = Table1.rows t1 in
  Alcotest.(check bool) "every row has a value" true
    (List.for_all (fun (k, v) -> String.length k > 0 && String.length v > 0) rows)

let suites =
  [
    ( "energy",
      [
        Alcotest.test_case "Table I constants" `Quick test_table1_constants;
        Alcotest.test_case "idle platform" `Quick test_ledger_zero_on_idle_platform;
        Alcotest.test_case "crossbar terms" `Quick test_ledger_crossbar_terms;
        Alcotest.test_case "edp" `Quick test_edp;
        Alcotest.test_case "Table I printable" `Quick test_table1_rows_printable;
      ] );
  ]
