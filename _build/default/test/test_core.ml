module Flow = Tdo_cim.Flow
module Experiments = Tdo_cim.Experiments
module Kernels = Tdo_polybench.Kernels
module Dataset = Tdo_polybench.Dataset
module Interp = Tdo_lang.Interp
module Mat = Tdo_linalg.Mat
module Ir = Tdo_ir.Ir
module Timeline = Tdo_cimacc.Timeline

(* ---------- flow plumbing ---------- *)

let gemm16 =
  {|
void gemm(float alpha, float beta, float C[16][16], float A[16][16], float B[16][16]) {
  for (int i = 0; i < 16; i++)
    for (int j = 0; j < 16; j++) {
      C[i][j] *= beta;
      for (int k = 0; k < 16; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
|}

let test_flow_compile_modes () =
  let host, host_report = Flow.compile ~options:Flow.o3 gemm16 in
  Alcotest.(check bool) "o3 has no cim calls" false (Ir.contains_cim_calls host);
  Alcotest.(check bool) "o3 runs no tactics" true (host_report = None);
  let cim, cim_report = Flow.compile ~options:Flow.o3_loop_tactics gemm16 in
  Alcotest.(check bool) "loop-tactics offloads" true (Ir.contains_cim_calls cim);
  Alcotest.(check bool) "report produced" true (cim_report <> None)

let test_flow_measurement_fields () =
  let b = Result.get_ok (Kernels.find "gemm") in
  let n = 16 in
  let args, _ = b.Kernels.make_args ~n ~seed:3 in
  let m, _ = Flow.run_source ~options:Flow.o3_loop_tactics (b.Kernels.source ~n) ~args in
  Alcotest.(check bool) "instructions counted" true (m.Flow.roi_instructions > 0);
  Alcotest.(check bool) "time positive" true (m.Flow.time_s > 0.0);
  Alcotest.(check bool) "energy positive" true (m.Flow.energy_j > 0.0);
  Alcotest.(check bool) "edp consistent" true
    (Float.abs (m.Flow.edp_js -. (m.Flow.energy_j *. m.Flow.time_s)) < 1e-18);
  Alcotest.(check bool) "cim used" true m.Flow.used_cim;
  Alcotest.(check bool) "macs recorded" true (m.Flow.cim_macs = n * n * n);
  Alcotest.(check bool) "writes recorded" true (m.Flow.cim_write_bytes = n * n)

(* ---------- PolyBench validation: interp = host exec ~ cim exec ---------- *)

let relative_error ~reference ~candidate =
  List.fold_left2
    (fun acc r c -> Float.max acc (Mat.max_abs_diff r c /. (1.0 +. Mat.max_abs r)))
    0.0 reference candidate

let validate_kernel name =
  let b = Result.get_ok (Kernels.find name) in
  let n = 16 in
  let source = b.Kernels.source ~n in
  (* golden: reference interpreter *)
  let interp_out =
    let args, readback = b.Kernels.make_args ~n ~seed:23 in
    let ast = Tdo_lang.Parser.parse_func source in
    Tdo_lang.Typecheck.check_func ast;
    Interp.run ast ~args;
    readback ()
  in
  (* host path *)
  let host_out, host_m =
    let args, readback = b.Kernels.make_args ~n ~seed:23 in
    let m, _ = Flow.run_source ~options:Flow.o3 source ~args in
    (readback (), m)
  in
  (* cim path *)
  let cim_out, cim_m =
    let args, readback = b.Kernels.make_args ~n ~seed:23 in
    let m, _ = Flow.run_source ~options:Flow.o3_loop_tactics source ~args in
    (readback (), m)
  in
  Alcotest.(check bool)
    (name ^ ": host executor bit-matches the interpreter")
    true
    (List.for_all2 (fun a b -> Mat.max_abs_diff a b = 0.0) interp_out host_out);
  Alcotest.(check bool) (name ^ ": host run stays off the device") false host_m.Flow.used_cim;
  Alcotest.(check bool) (name ^ ": cim run uses the device") true cim_m.Flow.used_cim;
  let err = relative_error ~reference:host_out ~candidate:cim_out in
  if err > 0.05 then
    Alcotest.failf "%s: offloaded result deviates %.3f (rel) from the host" name err

let polybench_validation_cases =
  List.map
    (fun name -> Alcotest.test_case name `Quick (fun () -> validate_kernel name))
    Kernels.names

let test_macs_metadata_consistent () =
  (* the per-kernel MAC formulas must match what the device measures *)
  List.iter
    (fun (b : Kernels.benchmark) ->
      let n = 16 in
      let args, _ = b.Kernels.make_args ~n ~seed:29 in
      let m, _ = Flow.run_source ~options:Flow.o3_loop_tactics (b.Kernels.source ~n) ~args in
      Alcotest.(check int)
        (b.Kernels.name ^ ": offloaded MACs match the formula")
        (b.Kernels.macs ~n) m.Flow.cim_macs)
    Kernels.all

(* ---------- Table I ---------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let test_table1 () =
  let rows = Experiments.table1 () in
  Alcotest.(check bool) "has enough rows" true (List.length rows >= 10);
  let flat = String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) rows) in
  List.iter
    (fun needle -> Alcotest.(check bool) ("mentions " ^ needle) true (contains flat needle))
    [ "256x256"; "200.00f"; "200.00p"; "3.90n"; "5.40p"; "2.11p"; "128.00p"; "LPDDR3" ]

(* ---------- Fig. 1 ---------- *)

let test_fig1 () =
  let traces = Experiments.fig1 () in
  Alcotest.(check (list string)) "three pulses" [ "reset"; "set"; "read" ]
    (List.map fst traces);
  List.iter
    (fun (_, trace) -> Alcotest.(check bool) "non-empty trace" true (List.length trace >= 3))
    traces

(* ---------- Fig. 2(d) ---------- *)

let test_fig2d () =
  let events = Experiments.fig2d ~n:8 () in
  Alcotest.(check bool) "events recorded" true (List.length events > 5);
  (match events with
  | first :: _ ->
      Alcotest.(check bool) "starts with trigger" true (first.Timeline.phase = Timeline.Trigger)
  | [] -> Alcotest.fail "no events");
  let last = List.nth events (List.length events - 1) in
  Alcotest.(check bool) "ends result-ready" true (last.Timeline.phase = Timeline.Result_ready);
  List.iter
    (fun e ->
      Alcotest.(check bool) "no event after completion" true (e.Timeline.at <= last.Timeline.at))
    events

(* ---------- Fig. 5 ---------- *)

let test_fig5_shape () =
  let rows, meta = Experiments.fig5 ~n:32 () in
  Alcotest.(check int) "seven endurance points" 7 (List.length rows);
  (* smart mapping writes the shared A once; naive writes B and E *)
  Alcotest.(check int) "smart writes A once" (32 * 32) meta.Experiments.smart_write_bytes;
  Alcotest.(check int) "naive writes B and E" (2 * 32 * 32) meta.Experiments.naive_write_bytes;
  List.iter
    (fun r ->
      let ratio = r.Experiments.smart_years /. r.Experiments.naive_years in
      if ratio < 1.5 || ratio > 2.5 then
        Alcotest.failf "smart/naive lifetime ratio %.2f outside [1.5, 2.5]" ratio)
    rows;
  (* lifetime is linear in endurance *)
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  let expected =
    last.Experiments.endurance_millions /. first.Experiments.endurance_millions
  in
  let measured = last.Experiments.smart_years /. first.Experiments.smart_years in
  Alcotest.(check bool) "linear in endurance" true (Float.abs (measured -. expected) < 0.01)

(* ---------- Fig. 6 ---------- *)

let fig6_small = lazy (Experiments.fig6 ~dataset:Dataset.Small ())

let test_fig6_shape () =
  let rows, summary = Lazy.force fig6_small in
  Alcotest.(check (list string)) "paper kernel order"
    [ "2mm"; "3mm"; "gemm"; "conv"; "gesummv"; "bicg"; "mvt" ]
    (List.map (fun r -> r.Experiments.kernel) rows);
  List.iter
    (fun r ->
      match r.Experiments.kind with
      | Kernels.Gemm_like when r.Experiments.kernel <> "conv" ->
          if r.Experiments.energy_improvement <= 2.0 then
            Alcotest.failf "%s should clearly win energy (got %.2fx)" r.Experiments.kernel
              r.Experiments.energy_improvement
      | Kernels.Gemm_like -> ()
      | Kernels.Gemv_like ->
          if r.Experiments.energy_improvement >= 1.0 then
            Alcotest.failf "%s should lose on energy (got %.2fx)" r.Experiments.kernel
              r.Experiments.energy_improvement)
    rows;
  Alcotest.(check bool) "selective geomean beats plain geomean" true
    (summary.Experiments.selective_geomean_energy_improvement
    >= summary.Experiments.geomean_energy_improvement)

let test_fig6_intensity_story () =
  (* Fig. 6 left's second axis: compute intensity separates the two
     kernel classes *)
  let rows, _ = Lazy.force fig6_small in
  List.iter
    (fun r ->
      match r.Experiments.kind with
      | Kernels.Gemm_like ->
          if r.Experiments.macs_per_cim_write < 16.0 then
            Alcotest.failf "%s: expected high MACs/write, got %.1f" r.Experiments.kernel
              r.Experiments.macs_per_cim_write
      | Kernels.Gemv_like ->
          if r.Experiments.macs_per_cim_write > 2.0 then
            Alcotest.failf "%s: expected MACs/write near 1, got %.1f" r.Experiments.kernel
              r.Experiments.macs_per_cim_write)
    rows

let test_fig6_results_validated () =
  let rows, _ = Lazy.force fig6_small in
  List.iter
    (fun r ->
      if r.Experiments.max_abs_error > 10.0 then
        Alcotest.failf "%s: offloaded result error %.3f too large" r.Experiments.kernel
          r.Experiments.max_abs_error)
    rows

let test_fig6_edp_follows_energy () =
  (* "It follows the same trend as the energy plot" *)
  let rows, _ = Lazy.force fig6_small in
  List.iter
    (fun r ->
      let e = r.Experiments.energy_improvement > 1.0 in
      let d = r.Experiments.edp_improvement > 1.0 in
      if e <> d && Float.abs (r.Experiments.edp_improvement -. 1.0) > 0.5 then
        Alcotest.failf "%s: EDP and energy disagree (E %.2fx, EDP %.2fx)" r.Experiments.kernel
          r.Experiments.energy_improvement r.Experiments.edp_improvement)
    rows

let suites =
  [
    ( "core.flow",
      [
        Alcotest.test_case "compile modes" `Quick test_flow_compile_modes;
        Alcotest.test_case "measurement fields" `Quick test_flow_measurement_fields;
      ] );
    ( "core.polybench",
      polybench_validation_cases
      @ [ Alcotest.test_case "macs metadata" `Quick test_macs_metadata_consistent ] );
    ( "core.experiments",
      [
        Alcotest.test_case "table1" `Quick test_table1;
        Alcotest.test_case "fig1 pulses" `Quick test_fig1;
        Alcotest.test_case "fig2d timeline" `Quick test_fig2d;
        Alcotest.test_case "fig5 endurance" `Quick test_fig5_shape;
        Alcotest.test_case "fig6 win/lose shape" `Slow test_fig6_shape;
        Alcotest.test_case "fig6 compute intensity" `Slow test_fig6_intensity_story;
        Alcotest.test_case "fig6 validated results" `Slow test_fig6_results_validated;
        Alcotest.test_case "fig6 EDP trend" `Slow test_fig6_edp_follows_energy;
      ] );
  ]
