module Ablations = Tdo_cim.Ablations

let test_pinning () =
  match Ablations.pinning ~n:32 () with
  | [ smart; naive ] ->
      Alcotest.(check int) "naive doubles the writes"
        (2 * smart.Ablations.crossbar_write_bytes)
        naive.Ablations.crossbar_write_bytes;
      Alcotest.(check bool) "smart lives longer" true
        (smart.Ablations.lifetime_years_at_25m > naive.Ablations.lifetime_years_at_25m);
      Alcotest.(check bool) "smart uses less energy" true
        (smart.Ablations.energy_j < naive.Ablations.energy_j)
  | _ -> Alcotest.fail "expected two rows"

let test_fusion () =
  match Ablations.fusion ~n:16 () with
  | [ fused; unfused ] ->
      Alcotest.(check bool) "rows labelled" true
        (fused.Ablations.fusion && not unfused.Ablations.fusion);
      Alcotest.(check int) "fusion: one launch" 1 fused.Ablations.launches;
      Alcotest.(check int) "no fusion: two launches" 2 unfused.Ablations.launches;
      Alcotest.(check bool) "fusion flushes less" true
        (fused.Ablations.cache_flushes < unfused.Ablations.cache_flushes);
      Alcotest.(check bool) "fusion saves energy" true
        (fused.Ablations.energy_j < unfused.Ablations.energy_j)
  | _ -> Alcotest.fail "expected two rows"

let test_double_buffering () =
  match Ablations.double_buffering ~n:32 () with
  | [ on; off ] ->
      Alcotest.(check bool) "double buffering hides fill time" true
        (on.Ablations.device_time_s < off.Ablations.device_time_s)
  | _ -> Alcotest.fail "expected two rows"

let test_geometry () =
  let rows = Ablations.geometry ~n:64 () in
  Alcotest.(check int) "four geometries" 4 (List.length rows);
  let launches = List.map (fun r -> r.Ablations.launches) rows in
  Alcotest.(check bool) "launches decrease with crossbar size" true
    (List.sort compare launches = List.rev launches);
  (* the pinned operand is written exactly once regardless of tiling *)
  List.iter
    (fun r ->
      Alcotest.(check int) "writes independent of geometry" (64 * 64)
        r.Ablations.crossbar_write_bytes)
    rows

let test_noise () =
  let rows = Ablations.noise ~n:16 () in
  let ideal = List.hd rows in
  let worst = List.nth rows (List.length rows - 1) in
  Alcotest.(check bool) "ideal row first" true (ideal.Ablations.noise_sigma = None);
  Alcotest.(check bool) "heavy noise degrades accuracy" true
    (worst.Ablations.max_abs_error > ideal.Ablations.max_abs_error)

let test_selective () =
  let rows = Ablations.selective ~dataset:Tdo_polybench.Dataset.Mini () in
  let all_offloaded = List.hd rows in
  Alcotest.(check bool) "no threshold offloads everything" true
    (all_offloaded.Ablations.kept_on_host = 0);
  let strictest = List.nth rows (List.length rows - 1) in
  Alcotest.(check bool) "strict threshold keeps kernels on the host" true
    (strictest.Ablations.kept_on_host > all_offloaded.Ablations.kept_on_host);
  (* kept + offloaded is conserved *)
  List.iter
    (fun r ->
      Alcotest.(check int) "kernels conserved"
        (all_offloaded.Ablations.offloaded + all_offloaded.Ablations.kept_on_host)
        (r.Ablations.offloaded + r.Ablations.kept_on_host))
    rows

let test_wear_leveling () =
  match Ablations.wear_leveling ~lines:32 ~writes:20_000 () with
  | [ none; start_gap ] ->
      Alcotest.(check bool) "start-gap reduces max wear" true
        (start_gap.Ablations.max_wear < none.Ablations.max_wear / 2);
      Alcotest.(check bool) "start-gap near the ideal bound" true
        (start_gap.Ablations.max_wear <= 4 * start_gap.Ablations.ideal_max_wear);
      Alcotest.(check bool) "leveling costs copy writes" true
        (start_gap.Ablations.overhead_writes > 0 && none.Ablations.overhead_writes = 0)
  | _ -> Alcotest.fail "expected two rows"

let test_tiles () =
  match Ablations.tiles ~n:32 () with
  | one :: two :: _ ->
      Alcotest.(check int) "row labels" 1 one.Ablations.tiles;
      Alcotest.(check bool) "a second tile parallelises 3mm's independent products" true
        (two.Ablations.time_s < one.Ablations.time_s);
      Alcotest.(check bool) "and lowers EDP" true (two.Ablations.edp_js < one.Ablations.edp_js)
  | _ -> Alcotest.fail "expected three rows"

let suites =
  [
    ( "core.ablations",
      [
        Alcotest.test_case "operand pinning" `Quick test_pinning;
        Alcotest.test_case "fusion" `Quick test_fusion;
        Alcotest.test_case "double buffering" `Quick test_double_buffering;
        Alcotest.test_case "crossbar geometry" `Slow test_geometry;
        Alcotest.test_case "analog noise" `Quick test_noise;
        Alcotest.test_case "selective offload" `Slow test_selective;
        Alcotest.test_case "wear leveling" `Quick test_wear_leveling;
        Alcotest.test_case "tile count" `Quick test_tiles;
      ] );
  ]
