open Tdo_runtime
module Sim = Tdo_sim
module Mat = Tdo_linalg.Mat
module Blas_ref = Tdo_linalg.Blas_ref
module Regs = Tdo_cimacc.Context_regs
module Prng = Tdo_util.Prng

(* ---------- CMA ---------- *)

let small_cma = { Cma.base = 0x1000; size = 4096; alignment = 256 }

let test_cma_alloc_free () =
  let cma = Cma.create ~config:small_cma () in
  let a = Result.get_ok (Cma.alloc cma ~bytes:100) in
  Alcotest.(check int) "first block at base" 0x1000 a;
  Alcotest.(check bool) "aligned" true (a mod 256 = 0);
  Alcotest.(check int) "rounded to alignment" 256 (Option.get (Cma.allocation_size cma a));
  let b = Result.get_ok (Cma.alloc cma ~bytes:512) in
  Alcotest.(check int) "second block follows" 0x1100 b;
  Cma.free cma a;
  Alcotest.(check bool) "a freed" false (Cma.is_allocated cma a);
  Alcotest.(check bool) "b live" true (Cma.is_allocated cma b)

let test_cma_exhaustion () =
  let cma = Cma.create ~config:small_cma () in
  let a = Cma.alloc cma ~bytes:4096 in
  Alcotest.(check bool) "whole region" true (Result.is_ok a);
  Alcotest.(check bool) "second alloc fails" true (Result.is_error (Cma.alloc cma ~bytes:1))

let test_cma_coalescing () =
  let cma = Cma.create ~config:small_cma () in
  let a = Result.get_ok (Cma.alloc cma ~bytes:1024) in
  let b = Result.get_ok (Cma.alloc cma ~bytes:1024) in
  let c = Result.get_ok (Cma.alloc cma ~bytes:1024) in
  ignore (Result.get_ok (Cma.alloc cma ~bytes:1024));
  Cma.free cma a;
  Cma.free cma c;
  (* fragmented: two 1 KB holes *)
  Alcotest.(check int) "largest hole 1KB" 1024 (Cma.largest_free_block cma);
  Alcotest.(check bool) "2KB alloc fails (fragmentation)" true
    (Result.is_error (Cma.alloc cma ~bytes:2048));
  Cma.free cma b;
  (* a+b+c coalesce into 3 KB *)
  Alcotest.(check int) "coalesced" 3072 (Cma.largest_free_block cma);
  Alcotest.(check bool) "2KB alloc now fits" true (Result.is_ok (Cma.alloc cma ~bytes:2048))

let test_cma_double_free () =
  let cma = Cma.create ~config:small_cma () in
  let a = Result.get_ok (Cma.alloc cma ~bytes:64) in
  Cma.free cma a;
  Alcotest.(check bool) "double free raises" true
    (try
       Cma.free cma a;
       false
     with Invalid_argument _ -> true)

let test_cma_stats () =
  let cma = Cma.create ~config:small_cma () in
  let a = Result.get_ok (Cma.alloc cma ~bytes:256) in
  let _b = Result.get_ok (Cma.alloc cma ~bytes:256) in
  Cma.free cma a;
  Alcotest.(check int) "allocations" 2 (Cma.allocations cma);
  Alcotest.(check int) "frees" 1 (Cma.frees cma);
  Alcotest.(check int) "allocated" 256 (Cma.allocated_bytes cma);
  Alcotest.(check int) "peak" 512 (Cma.peak_allocated_bytes cma);
  Alcotest.(check int) "free bytes" (4096 - 256) (Cma.free_bytes cma)

let qcheck_cma_no_overlap =
  QCheck.Test.make ~name:"cma blocks never overlap" ~count:100 QCheck.small_int (fun seed ->
      let g = Prng.create ~seed in
      let cma = Cma.create ~config:{ Cma.base = 0; size = 65536; alignment = 64 } () in
      let live = ref [] in
      let ok = ref true in
      for _ = 1 to 50 do
        if Prng.bool g || !live = [] then begin
          let bytes = 1 + Prng.int g ~bound:2048 in
          match Cma.alloc cma ~bytes with
          | Error _ -> ()
          | Ok addr ->
              let size = Option.get (Cma.allocation_size cma addr) in
              List.iter
                (fun (a, s) -> if addr < a + s && a < addr + size then ok := false)
                !live;
              live := (addr, size) :: !live
        end
        else begin
          let idx = Prng.int g ~bound:(List.length !live) in
          let addr, _ = List.nth !live idx in
          Cma.free cma addr;
          live := List.filter (fun (a, _) -> a <> addr) !live
        end
      done;
      !ok)

let qcheck_cma_conservation =
  QCheck.Test.make ~name:"cma allocated + free = region size" ~count:100 QCheck.small_int
    (fun seed ->
      let g = Prng.create ~seed in
      let cma = Cma.create ~config:{ Cma.base = 0; size = 65536; alignment = 64 } () in
      let live = ref [] in
      for _ = 1 to 40 do
        if Prng.bool g || !live = [] then begin
          match Cma.alloc cma ~bytes:(1 + Prng.int g ~bound:4096) with
          | Error _ -> ()
          | Ok addr -> live := addr :: !live
        end
        else begin
          let idx = Prng.int g ~bound:(List.length !live) in
          let addr = List.nth !live idx in
          Cma.free cma addr;
          live := List.filter (fun a -> a <> addr) !live
        end
      done;
      Cma.allocated_bytes cma + Cma.free_bytes cma = 65536)

(* ---------- Platform / Driver ---------- *)

let small_engine =
  {
    Tdo_cimacc.Micro_engine.default_config with
    Tdo_cimacc.Micro_engine.xbar =
      { Tdo_pcm.Crossbar.default_config with Tdo_pcm.Crossbar.rows = 32; cols = 32 };
  }

let make_platform () =
  Platform.create
    ~config:{ Platform.default_config with Platform.engine = small_engine }
    ()

let test_platform_resolve () =
  let p = make_platform () in
  let cma_base = (Platform.default_config.Platform.cma).Cma.base in
  let virt = cma_base + Platform.default_config.Platform.virt_offset in
  Alcotest.(check bool) "virt recognised" true (Platform.is_device_virtual p virt);
  Alcotest.(check int) "virt -> phys" cma_base (Platform.resolve p virt);
  Alcotest.(check int) "identity elsewhere" 0x1234 (Platform.resolve p 0x1234);
  Alcotest.(check bool) "plain addr not device" false (Platform.is_device_virtual p 0x1234)

let test_driver_translate_charges () =
  let p = make_platform () in
  let d = Driver.create p in
  let insts0 = Sim.Cpu.instructions (Platform.cpu p) in
  let phys = Driver.translate d (0x3000_0000 + 0x4000_0000) in
  Alcotest.(check int) "translation result" 0x3000_0000 phys;
  Alcotest.(check bool) "translation charged to host" true
    (Sim.Cpu.instructions (Platform.cpu p) > insts0);
  Alcotest.(check int) "counted" 1 (Driver.translations d)

let test_driver_translate_rejects () =
  let p = make_platform () in
  let d = Driver.create p in
  Alcotest.(check bool) "out-of-range raises" true
    (try
       ignore (Driver.translate d (-5));
       false
     with Invalid_argument _ -> true)

(* ---------- API end-to-end ---------- *)

let test_api_gemm_end_to_end () =
  let p = make_platform () in
  let api = Api.init p in
  let g = Prng.create ~seed:51 in
  let m = 8 and n = 6 and k = 7 in
  let a = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
  let buf_a = Result.get_ok (Api.malloc api ~bytes:(4 * m * k)) in
  let buf_b = Result.get_ok (Api.malloc api ~bytes:(4 * k * n)) in
  let buf_c = Result.get_ok (Api.malloc api ~bytes:(4 * m * n)) in
  let va = Api.view ~ld:k buf_a and vb = Api.view ~ld:n buf_b and vc = Api.view ~ld:n buf_c in
  Api.host_to_dev api ~src:a ~dst:va;
  Api.host_to_dev api ~src:b ~dst:vb;
  (match Api.sgemm api ~m ~n ~k ~alpha:1.0 ~a:va ~b:vb ~beta:0.0 ~c:vc () with
  | Error e -> Alcotest.failf "sgemm failed: %s" e
  | Ok () -> ());
  let actual = Api.dev_to_host api ~src:vc ~rows:m ~cols:n in
  let expected = Mat.create ~rows:m ~cols:n in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b ~c:expected ();
  Alcotest.(check bool) "result within quantisation error" true
    (Mat.max_abs_diff expected actual < 0.2);
  let c = Api.counters api in
  Alcotest.(check int) "one gemm call" 1 c.Api.gemm_calls;
  Alcotest.(check int) "one launch" 1 c.Api.launches;
  (* the offload really went through the driver and the device *)
  let d = Api.driver api in
  Alcotest.(check int) "one ioctl" 1 (Driver.ioctls d);
  Alcotest.(check int) "flush before launch" 1 (Driver.cache_flushes d);
  Alcotest.(check bool) "device executed a job" true
    ((Tdo_cimacc.Micro_engine.counters (Tdo_cimacc.Accel.engine p.Platform.accel))
       .Tdo_cimacc.Micro_engine.jobs = 1)

let test_api_gemm_tiled_when_oversized () =
  let p = make_platform () in
  let api = Api.init p in
  let g = Prng.create ~seed:52 in
  (* 48 > 32 in both m and k: needs 2x2 = 4 tile launches *)
  let m = 48 and n = 8 and k = 48 in
  let a = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
  let buf_a = Result.get_ok (Api.malloc api ~bytes:(4 * m * k)) in
  let buf_b = Result.get_ok (Api.malloc api ~bytes:(4 * k * n)) in
  let buf_c = Result.get_ok (Api.malloc api ~bytes:(4 * m * n)) in
  let va = Api.view ~ld:k buf_a and vb = Api.view ~ld:n buf_b and vc = Api.view ~ld:n buf_c in
  Api.host_to_dev api ~src:a ~dst:va;
  Api.host_to_dev api ~src:b ~dst:vb;
  (match Api.sgemm api ~m ~n ~k ~alpha:1.0 ~a:va ~b:vb ~beta:0.0 ~c:vc () with
  | Error e -> Alcotest.failf "tiled sgemm failed: %s" e
  | Ok () -> ());
  let actual = Api.dev_to_host api ~src:vc ~rows:m ~cols:n in
  let expected = Mat.create ~rows:m ~cols:n in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b ~c:expected ();
  Alcotest.(check bool) "tiled result close" true (Mat.max_abs_diff expected actual < 1.0);
  Alcotest.(check int) "4 tile launches" 4 (Api.counters api).Api.launches

let test_api_gemv () =
  let p = make_platform () in
  let api = Api.init p in
  let g = Prng.create ~seed:53 in
  let m = 12 and k = 9 in
  let a = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
  let x = Mat.random g ~rows:k ~cols:1 ~lo:(-1.0) ~hi:1.0 in
  let buf_a = Result.get_ok (Api.malloc api ~bytes:(4 * m * k)) in
  let buf_x = Result.get_ok (Api.malloc api ~bytes:(4 * k)) in
  let buf_y = Result.get_ok (Api.malloc api ~bytes:(4 * m)) in
  Api.host_to_dev api ~src:a ~dst:(Api.view ~ld:k buf_a);
  Api.host_to_dev api ~src:x ~dst:(Api.view ~ld:1 buf_x);
  (match
     Api.sgemv api ~m ~k ~alpha:1.0 ~a:(Api.view ~ld:k buf_a) ~x:(Api.view ~ld:1 buf_x)
       ~beta:0.0 ~y:(Api.view ~ld:1 buf_y) ()
   with
  | Error e -> Alcotest.failf "sgemv failed: %s" e
  | Ok () -> ());
  let actual = Api.dev_to_host api ~src:(Api.view ~ld:1 buf_y) ~rows:m ~cols:1 in
  let expected = Mat.create ~rows:m ~cols:1 in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b:x ~c:expected ();
  Alcotest.(check bool) "gemv close" true (Mat.max_abs_diff expected actual < 0.2);
  Alcotest.(check int) "counted as gemv" 1 (Api.counters api).Api.gemv_calls

let test_api_batched_endurance_win () =
  (* Listing 2: two GEMMs sharing A. Batched + Pin_a must program the
     crossbar once; two separate calls with Pin_b (naive) must program
     twice as many operands. *)
  let run_smart () =
    let p = make_platform () in
    let api = Api.init p in
    let g = Prng.create ~seed:54 in
    let m = 16 and n = 12 and k = 16 in
    let a = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
    let b = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
    let e = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
    let alloc bytes = Result.get_ok (Api.malloc api ~bytes) in
    let buf_a = alloc (4 * m * k)
    and buf_b = alloc (4 * k * n)
    and buf_e = alloc (4 * k * n)
    and buf_c = alloc (4 * m * n)
    and buf_d = alloc (4 * m * n) in
    Api.host_to_dev api ~src:a ~dst:(Api.view ~ld:k buf_a);
    Api.host_to_dev api ~src:b ~dst:(Api.view ~ld:n buf_b);
    Api.host_to_dev api ~src:e ~dst:(Api.view ~ld:n buf_e);
    let va = Api.view ~ld:k buf_a in
    (match
       Api.gemm_batched api ~pin:Regs.Pin_a ~m ~n ~k ~alpha:1.0 ~beta:0.0
         ~batch:
           [
             (va, Api.view ~ld:n buf_b, Api.view ~ld:n buf_c);
             (va, Api.view ~ld:n buf_e, Api.view ~ld:n buf_d);
           ]
         ()
     with
    | Error err -> Alcotest.failf "batched failed: %s" err
    | Ok () -> ());
    let writes =
      (Tdo_pcm.Crossbar.counters
         (Tdo_cimacc.Micro_engine.crossbar (Tdo_cimacc.Accel.engine p.Platform.accel)))
        .Tdo_pcm.Crossbar.logical_writes
    in
    (* validate results too *)
    let actual_c = Api.dev_to_host api ~src:(Api.view ~ld:n buf_c) ~rows:m ~cols:n in
    let expected_c = Mat.create ~rows:m ~cols:n in
    Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b ~c:expected_c ();
    Alcotest.(check bool) "batched C close" true (Mat.max_abs_diff expected_c actual_c < 0.5);
    let actual_d = Api.dev_to_host api ~src:(Api.view ~ld:n buf_d) ~rows:m ~cols:n in
    let expected_d = Mat.create ~rows:m ~cols:n in
    Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b:e ~c:expected_d ();
    Alcotest.(check bool) "batched D close" true (Mat.max_abs_diff expected_d actual_d < 0.5);
    writes
  in
  let run_naive () =
    let p = make_platform () in
    let api = Api.init p in
    let g = Prng.create ~seed:54 in
    let m = 16 and n = 12 and k = 16 in
    let a = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
    let b = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
    let e = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
    let alloc bytes = Result.get_ok (Api.malloc api ~bytes) in
    let buf_a = alloc (4 * m * k)
    and buf_b = alloc (4 * k * n)
    and buf_e = alloc (4 * k * n)
    and buf_c = alloc (4 * m * n)
    and buf_d = alloc (4 * m * n) in
    Api.host_to_dev api ~src:a ~dst:(Api.view ~ld:k buf_a);
    Api.host_to_dev api ~src:b ~dst:(Api.view ~ld:n buf_b);
    Api.host_to_dev api ~src:e ~dst:(Api.view ~ld:n buf_e);
    let call b_buf c_buf =
      match
        Api.sgemm api ~pin:Regs.Pin_b ~m ~n ~k ~alpha:1.0 ~a:(Api.view ~ld:k buf_a)
          ~b:(Api.view ~ld:n b_buf) ~beta:0.0 ~c:(Api.view ~ld:n c_buf) ()
      with
      | Error err -> Alcotest.failf "naive sgemm failed: %s" err
      | Ok () -> ()
    in
    call buf_b buf_c;
    call buf_e buf_d;
    (Tdo_pcm.Crossbar.counters
       (Tdo_cimacc.Micro_engine.crossbar (Tdo_cimacc.Accel.engine p.Platform.accel)))
      .Tdo_pcm.Crossbar.logical_writes
  in
  let smart = run_smart () and naive = run_naive () in
  Alcotest.(check int) "smart writes A once" (16 * 16) smart;
  Alcotest.(check int) "naive writes B and E" (2 * 16 * 12) naive;
  Alcotest.(check bool) "smart mapping halves writes" true (smart < naive)

let test_api_generation_invalidation () =
  (* Rewriting A between two calls must force reprogramming. *)
  let p = make_platform () in
  let api = Api.init p in
  let g = Prng.create ~seed:55 in
  let m = 8 and n = 6 and k = 8 in
  let a = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
  let alloc bytes = Result.get_ok (Api.malloc api ~bytes) in
  let buf_a = alloc (4 * m * k) and buf_b = alloc (4 * k * n) and buf_c = alloc (4 * m * n) in
  let va = Api.view ~ld:k buf_a and vb = Api.view ~ld:n buf_b and vc = Api.view ~ld:n buf_c in
  Api.host_to_dev api ~src:a ~dst:va;
  Api.host_to_dev api ~src:b ~dst:vb;
  let gemm () =
    match Api.sgemm api ~m ~n ~k ~alpha:1.0 ~a:va ~b:vb ~beta:0.0 ~c:vc () with
    | Error e -> Alcotest.failf "sgemm failed: %s" e
    | Ok () -> ()
  in
  gemm ();
  gemm ();
  let engine = Tdo_cimacc.Accel.engine p.Platform.accel in
  Alcotest.(check int) "second call reused pin" 1
    (Tdo_cimacc.Micro_engine.counters engine).Tdo_cimacc.Micro_engine.programming_skipped;
  (* mutate A, call again: reuse must NOT happen *)
  let a2 = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
  Api.host_to_dev api ~src:a2 ~dst:va;
  gemm ();
  Alcotest.(check int) "rewrite invalidates pin" 1
    (Tdo_cimacc.Micro_engine.counters engine).Tdo_cimacc.Micro_engine.programming_skipped;
  (* and the result reflects the new A *)
  let actual = Api.dev_to_host api ~src:vc ~rows:m ~cols:n in
  let expected = Mat.create ~rows:m ~cols:n in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a:a2 ~b ~c:expected ();
  Alcotest.(check bool) "fresh data used" true (Mat.max_abs_diff expected actual < 0.2)

let test_api_free_rejected_after_use () =
  let p = make_platform () in
  let api = Api.init p in
  let buf = Result.get_ok (Api.malloc api ~bytes:64) in
  Api.free api buf;
  Alcotest.(check bool) "double free raises" true
    (try
       Api.free api buf;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "use after free raises" true
    (try
       ignore (Api.load_f32 api buf ~offset_elems:0);
       false
     with Invalid_argument _ -> true)

let test_api_offload_overhead_visible () =
  (* The host must pay instructions for init/ioctl/flush/poll: this is
     the per-offload overhead that sinks GEMV-like kernels. *)
  let p = make_platform () in
  let api = Api.init p in
  let g = Prng.create ~seed:56 in
  let a = Mat.random g ~rows:4 ~cols:4 ~lo:(-1.0) ~hi:1.0 in
  let alloc bytes = Result.get_ok (Api.malloc api ~bytes) in
  let buf_a = alloc 64 and buf_b = alloc 64 and buf_c = alloc 64 in
  Api.host_to_dev api ~src:a ~dst:(Api.view ~ld:4 buf_a);
  Api.host_to_dev api ~src:a ~dst:(Api.view ~ld:4 buf_b);
  let before = Sim.Cpu.instructions (Platform.cpu p) in
  (match
     Api.sgemm api ~m:4 ~n:4 ~k:4 ~alpha:1.0 ~a:(Api.view ~ld:4 buf_a)
       ~b:(Api.view ~ld:4 buf_b) ~beta:0.0 ~c:(Api.view ~ld:4 buf_c) ()
   with
  | Error e -> Alcotest.failf "sgemm failed: %s" e
  | Ok () -> ());
  let overhead = Sim.Cpu.instructions (Platform.cpu p) - before in
  Alcotest.(check bool) "offload costs hundreds of host instructions" true (overhead > 200);
  Alcotest.(check bool) "host stalled during flush" true (Driver.flush_stall_ps (Api.driver api) > 0);
  Alcotest.(check bool) "host stalled waiting" true (Driver.wait_stall_ps (Api.driver api) > 0)

let suites =
  [
    ( "runtime.cma",
      [
        Alcotest.test_case "alloc/free" `Quick test_cma_alloc_free;
        Alcotest.test_case "exhaustion" `Quick test_cma_exhaustion;
        Alcotest.test_case "coalescing" `Quick test_cma_coalescing;
        Alcotest.test_case "double free" `Quick test_cma_double_free;
        Alcotest.test_case "stats" `Quick test_cma_stats;
        QCheck_alcotest.to_alcotest qcheck_cma_no_overlap;
        QCheck_alcotest.to_alcotest qcheck_cma_conservation;
      ] );
    ( "runtime.platform",
      [
        Alcotest.test_case "mmu resolve" `Quick test_platform_resolve;
        Alcotest.test_case "driver translate" `Quick test_driver_translate_charges;
        Alcotest.test_case "translate rejects" `Quick test_driver_translate_rejects;
      ] );
    ( "runtime.api",
      [
        Alcotest.test_case "gemm end to end" `Quick test_api_gemm_end_to_end;
        Alcotest.test_case "tiled oversized gemm" `Quick test_api_gemm_tiled_when_oversized;
        Alcotest.test_case "gemv" `Quick test_api_gemv;
        Alcotest.test_case "batched endurance win (Listing 2)" `Quick
          test_api_batched_endurance_win;
        Alcotest.test_case "generation invalidation" `Quick test_api_generation_invalidation;
        Alcotest.test_case "free semantics" `Quick test_api_free_rejected_after_use;
        Alcotest.test_case "offload overhead visible" `Quick test_api_offload_overhead_visible;
      ] );
  ]

(* ---------- driver details ---------- *)

let test_driver_launch_register_writes () =
  let p = make_platform () in
  let d = Driver.create p in
  let job =
    {
      Regs.op = Regs.Gemm;
      m = 4;
      n = 4;
      k = 4;
      trans_a = false;
      trans_b = true;
      alpha = 1.5;
      beta = 0.25;
      a_addr = 0x3000_0000 + 0x4000_0000;
      b_addr = 0x3000_1000 + 0x4000_0000;
      c_addr = 0x3000_2000 + 0x4000_0000;
      lda = 4;
      ldb = 4;
      ldc = 4;
      batch_count = 0;
      batch_desc_addr = 0;
      pin = Regs.Pin_b;
      generation = 9;
    }
  in
  Driver.launch d job;
  Alcotest.(check int) "one ioctl" 1 (Driver.ioctls d);
  Alcotest.(check int) "all parameter registers + command written" 18 (Driver.reg_writes d);
  Alcotest.(check int) "three buffer translations" 3 (Driver.translations d);
  Alcotest.(check int) "flush happened" 1 (Driver.cache_flushes d);
  (* the device decoded what we wrote, with physical addresses *)
  let regs = Tdo_cimacc.Accel.regs p.Platform.accel in
  match Regs.decode_job regs with
  | Error e -> Alcotest.failf "device decode failed: %s" e
  | Ok decoded ->
      Alcotest.(check int) "a translated" 0x3000_0000 decoded.Regs.a_addr;
      Alcotest.(check bool) "trans_b carried" true decoded.Regs.trans_b;
      Alcotest.(check (float 1e-6)) "alpha carried" 1.5 decoded.Regs.alpha;
      Alcotest.(check int) "generation carried" 9 decoded.Regs.generation;
      Alcotest.(check bool) "pin carried" true (decoded.Regs.pin = Regs.Pin_b)

let test_driver_flush_charges_instructions () =
  let p = make_platform () in
  let d = Driver.create p in
  let before = Sim.Cpu.instructions (Platform.cpu p) in
  Driver.launch d
    {
      Regs.op = Regs.Gemm;
      m = 1;
      n = 1;
      k = 1;
      trans_a = false;
      trans_b = false;
      alpha = 1.0;
      beta = 0.0;
      a_addr = 0;
      b_addr = 0;
      c_addr = 0;
      lda = 1;
      ldb = 1;
      ldc = 1;
      batch_count = 0;
      batch_desc_addr = 0;
      pin = Regs.Pin_a;
      generation = 0;
    };
  let spent = Sim.Cpu.instructions (Platform.cpu p) - before in
  (* the 2 MB L2 alone is 32768 lines x 2 instructions *)
  Alcotest.(check bool) "set/way walk dominates the launch cost" true (spent > 60_000)

let test_wait_policy_energy () =
  (* spinning burns instructions; event-waiting doesn't *)
  let run policy =
    let p = make_platform () in
    let driver_config = { Driver.default_config with Driver.wait_policy = policy } in
    let d = Driver.create ~config:driver_config p in
    (* stage a tiny gemm via raw memory writes *)
    let g = Prng.create ~seed:77 in
    let m = Mat.random g ~rows:8 ~cols:8 ~lo:(-1.0) ~hi:1.0 in
    Mat.iteri
      ~f:(fun i j v ->
        Sim.Memory.write_f32 p.Platform.memory (0x3000_0000 + (4 * ((i * 8) + j))) v;
        Sim.Memory.write_f32 p.Platform.memory (0x3000_1000 + (4 * ((i * 8) + j))) v)
      m;
    Driver.launch d
      {
        Regs.op = Regs.Gemm;
        m = 8;
        n = 8;
        k = 8;
        trans_a = false;
        trans_b = false;
        alpha = 1.0;
        beta = 0.0;
        a_addr = 0x3000_0000;
        b_addr = 0x3000_1000;
        c_addr = 0x3000_2000;
        lda = 8;
        ldb = 8;
        ldc = 8;
        batch_count = 0;
        batch_desc_addr = 0;
        pin = Regs.Pin_a;
        generation = 0;
      };
    let before = Sim.Cpu.instructions (Platform.cpu p) in
    (match Driver.await d with Ok () -> () | Error e -> Alcotest.failf "await: %s" e);
    ( Sim.Cpu.instructions (Platform.cpu p) - before,
      Driver.wait_stall_ps d,
      Sim.Cpu.time_ps (Platform.cpu p) )
  in
  let spin_insts, spin_wait, spin_time = run Driver.Spin in
  let event_insts, event_wait, event_time = run Driver.Event in
  Alcotest.(check bool) "spin burns instructions" true (spin_insts > 10 * event_insts);
  Alcotest.(check bool) "both waited comparable wall time" true
    (abs (spin_wait - event_wait) < spin_wait / 2);
  (* wall-clock must agree regardless of policy: spinning may not
     double-count time *)
  let drift = abs (spin_time - event_time) in
  Alcotest.(check bool) "no double-counted time" true
    (drift < event_time / 50)

(* ---------- api edge cases ---------- *)

let test_api_view_validation () =
  let p = make_platform () in
  let api = Api.init p in
  let buf = Result.get_ok (Api.malloc api ~bytes:64) in
  Alcotest.(check bool) "offset outside buffer" true
    (try
       ignore (Api.view ~offset_elems:16 ~ld:4 buf);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-positive ld" true
    (try
       ignore (Api.view ~ld:0 buf);
       false
     with Invalid_argument _ -> true)

let test_api_malloc_exhaustion () =
  let cma = { Tdo_runtime.Cma.base = 0x3000_0000; size = 4096; alignment = 256 } in
  let p =
    Platform.create ~config:{ Platform.default_config with Platform.cma } ()
  in
  let api = Api.init p in
  let first = Api.malloc api ~bytes:4096 in
  Alcotest.(check bool) "region-sized malloc fits" true (Result.is_ok first);
  Alcotest.(check bool) "second malloc fails cleanly" true
    (Result.is_error (Api.malloc api ~bytes:16))

let test_api_strided_views () =
  (* operate on a 4x4 sub-block of an 8x8 device matrix *)
  let p = make_platform () in
  let api = Api.init p in
  let g = Prng.create ~seed:78 in
  let a = Mat.random g ~rows:8 ~cols:8 ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:8 ~cols:8 ~lo:(-1.0) ~hi:1.0 in
  let alloc () = Result.get_ok (Api.malloc api ~bytes:(4 * 8 * 8)) in
  let buf_a = alloc () and buf_b = alloc () and buf_c = alloc () in
  Api.host_to_dev api ~src:a ~dst:(Api.view ~ld:8 buf_a);
  Api.host_to_dev api ~src:b ~dst:(Api.view ~ld:8 buf_b);
  (* sub-blocks starting at (2, 3) and (1, 0), output at (4, 4) *)
  let va = Api.view ~offset_elems:((2 * 8) + 3) ~ld:8 buf_a in
  let vb = Api.view ~offset_elems:((1 * 8) + 0) ~ld:8 buf_b in
  let vc = Api.view ~offset_elems:((4 * 8) + 4) ~ld:8 buf_c in
  (match Api.sgemm api ~m:4 ~n:4 ~k:4 ~alpha:1.0 ~a:va ~b:vb ~beta:0.0 ~c:vc () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "strided sgemm: %s" e);
  let sub m r c = Mat.init ~rows:4 ~cols:4 ~f:(fun i j -> Mat.get m (r + i) (c + j)) in
  let expected = Mat.create ~rows:4 ~cols:4 in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a:(sub a 2 3) ~b:(sub b 1 0) ~c:expected ();
  let actual = Api.dev_to_host api ~src:vc ~rows:4 ~cols:4 in
  Alcotest.(check bool) "sub-block gemm correct" true (Mat.max_abs_diff expected actual < 0.2)

let runtime_details_suite =
  ( "runtime.details",
    [
      Alcotest.test_case "launch programs every register" `Quick
        test_driver_launch_register_writes;
      Alcotest.test_case "flush charges instructions" `Quick
        test_driver_flush_charges_instructions;
      Alcotest.test_case "spin vs event waiting" `Quick test_wait_policy_energy;
      Alcotest.test_case "view validation" `Quick test_api_view_validation;
      Alcotest.test_case "malloc exhaustion" `Quick test_api_malloc_exhaustion;
      Alcotest.test_case "strided sub-block views" `Quick test_api_strided_views;
    ] )

let suites = suites @ [ runtime_details_suite ]

let test_api_strided_transposed () =
  (* op(A) = A^T on a sub-block with non-trivial leading dimension *)
  let p = make_platform () in
  let api = Api.init p in
  let g = Prng.create ~seed:79 in
  let a = Mat.random g ~rows:8 ~cols:8 ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:8 ~cols:8 ~lo:(-1.0) ~hi:1.0 in
  let alloc () = Result.get_ok (Api.malloc api ~bytes:(4 * 8 * 8)) in
  let buf_a = alloc () and buf_b = alloc () and buf_c = alloc () in
  Api.host_to_dev api ~src:a ~dst:(Api.view ~ld:8 buf_a);
  Api.host_to_dev api ~src:b ~dst:(Api.view ~ld:8 buf_b);
  (* C(4x4) = A[0..4,0..4]^T * B[0..4,0..4] *)
  (match
     Api.sgemm api ~trans_a:true ~m:4 ~n:4 ~k:4 ~alpha:1.0 ~a:(Api.view ~ld:8 buf_a)
       ~b:(Api.view ~ld:8 buf_b) ~beta:0.0 ~c:(Api.view ~ld:8 buf_c) ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "transposed strided sgemm: %s" e);
  let sub m r c rows cols = Mat.init ~rows ~cols ~f:(fun i j -> Mat.get m (r + i) (c + j)) in
  let expected = Mat.create ~rows:4 ~cols:4 in
  Blas_ref.gemm ~trans_a:Blas_ref.Transpose ~alpha:1.0 ~beta:0.0 ~a:(sub a 0 0 4 4)
    ~b:(sub b 0 0 4 4) ~c:expected ();
  let actual = Api.dev_to_host api ~src:(Api.view ~ld:8 buf_c) ~rows:4 ~cols:4 in
  Alcotest.(check bool) "A^T sub-block gemm correct" true
    (Mat.max_abs_diff expected actual < 0.2)

let strided_suite =
  ( "runtime.strided",
    [ Alcotest.test_case "transposed strided views" `Quick test_api_strided_transposed ] )

let suites = suites @ [ strided_suite ]
