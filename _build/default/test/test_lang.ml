open Tdo_lang
module Mat = Tdo_linalg.Mat
module Blas_ref = Tdo_linalg.Blas_ref
module Prng = Tdo_util.Prng

let gemm_src =
  {|
/* C = alpha*A*B + beta*C, PolyBench-style */
void gemm(float alpha, float beta, float C[8][6], float A[8][4], float B[4][6]) {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 6; j++) {
      C[i][j] *= beta;
      for (int k = 0; k < 4; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
|}

(* ---------- lexer ---------- *)

let test_lexer_tokens () =
  let toks = List.map fst (Lexer.tokenize "for (int i = 0; i < 10; i++) x += 1.5;") in
  Alcotest.(check int) "token count" 19 (List.length toks);
  Alcotest.(check bool) "keyword" true (List.hd toks = Lexer.KW_FOR);
  Alcotest.(check bool) "float literal" true (List.mem (Lexer.FLOAT 1.5) toks);
  Alcotest.(check bool) "plus-plus" true (List.mem Lexer.PLUS_PLUS toks)

let test_lexer_comments () =
  let toks = List.map fst (Lexer.tokenize "a // line comment\n /* block \n comment */ b") in
  Alcotest.(check bool) "comments stripped" true
    (toks = [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ])

let test_lexer_line_numbers () =
  let toks = Lexer.tokenize "a\nb\nc" in
  let line_of ident =
    List.find_map (fun (t, l) -> if t = Lexer.IDENT ident then Some l else None) toks
  in
  Alcotest.(check (option int)) "line 1" (Some 1) (line_of "a");
  Alcotest.(check (option int)) "line 3" (Some 3) (line_of "c")

let test_lexer_error () =
  Alcotest.(check bool) "bad char raises" true
    (try
       ignore (Lexer.tokenize "a ? b");
       false
     with Lexer.Lex_error { line = 1; _ } -> true)

(* ---------- parser ---------- *)

let test_parse_gemm_shape () =
  let f = Parser.parse_func gemm_src in
  Alcotest.(check string) "name" "gemm" f.Ast.fname;
  Alcotest.(check int) "params" 5 (List.length f.Ast.params);
  let c = List.nth f.Ast.params 2 in
  Alcotest.(check (list int)) "C dims" [ 8; 6 ] c.Ast.dims;
  match f.Ast.body with
  | [ Ast.For { var = "i"; body = [ Ast.For { var = "j"; body; _ } ]; _ } ] ->
      Alcotest.(check int) "j body has init + k loop" 2 (List.length body)
  | _ -> Alcotest.fail "unexpected loop structure"

let test_parse_precedence () =
  let f = Parser.parse_func "void f(float x) { x = 1.0 + 2.0 * 3.0; }" in
  match f.Ast.body with
  | [ Ast.Assign { rhs = Ast.Binop (Ast.Add, Ast.Float_lit 1.0, Ast.Binop (Ast.Mul, _, _)); _ } ]
    ->
      ()
  | _ -> Alcotest.fail "multiplication must bind tighter than addition"

let test_parse_pp_roundtrip () =
  let f = Parser.parse_func gemm_src in
  let printed = Format.asprintf "%a" Ast.pp_func f in
  let f2 = Parser.parse_func printed in
  let printed2 = Format.asprintf "%a" Ast.pp_func f2 in
  Alcotest.(check string) "pp . parse is stable" printed printed2

let test_parse_step () =
  let f = Parser.parse_func "void f(float A[16]) { for (int i = 0; i < 16; i += 4) A[i] = 0.0; }" in
  match f.Ast.body with
  | [ Ast.For { step = 4; _ } ] -> ()
  | _ -> Alcotest.fail "step not parsed"

let test_parse_errors () =
  let expect_error src =
    try
      ignore (Parser.parse_func src);
      false
    with Parser.Parse_error _ -> true
  in
  Alcotest.(check bool) "missing semicolon" true (expect_error "void f(float x) { x = 1.0 }");
  Alcotest.(check bool) "wrong loop var" true
    (expect_error "void f() { for (int i = 0; j < 4; i++) { } }");
  Alcotest.(check bool) "negative step" true
    (expect_error "void f(float A[4]) { for (int i = 0; i < 4; i += 0) A[i] = 0.0; }");
  Alcotest.(check bool) "non-literal dims" true (expect_error "void f(int n, float A[n]) { }")

(* ---------- typecheck ---------- *)

let check_type_error src =
  let f = Parser.parse_func src in
  try
    Typecheck.check_func f;
    false
  with Typecheck.Type_error _ -> true

let test_typecheck_accepts_gemm () = Typecheck.check_func (Parser.parse_func gemm_src)

let test_typecheck_rank () =
  Alcotest.(check bool) "rank mismatch" true
    (check_type_error "void f(float A[4][4]) { A[1] = 0.0; }")

let test_typecheck_undeclared () =
  Alcotest.(check bool) "undeclared" true (check_type_error "void f() { x = 1.0; }")

let test_typecheck_float_subscript () =
  Alcotest.(check bool) "float subscript" true
    (check_type_error "void f(float A[4], float x) { A[x] = 1.0; }")

let test_typecheck_int_from_float () =
  Alcotest.(check bool) "int = float" true
    (check_type_error "void f() { int i; i = 1.5; }")

let test_typecheck_scoping () =
  (* the same loop variable name in sibling loops is fine *)
  Typecheck.check_func
    (Parser.parse_func
       "void f(float A[4]) { for (int i = 0; i < 4; i++) A[i] = 0.0; for (int i = 0; i < 4; i++) A[i] = 1.0; }");
  (* a local declared inside a loop body is invisible outside *)
  Alcotest.(check bool) "scope ends with block" true
    (check_type_error
       "void f(float A[4]) { for (int i = 0; i < 4; i++) { float t; t = A[i]; } A[0] = t; }")

(* ---------- interpreter ---------- *)

let test_interp_gemm_matches_blas () =
  let f = Parser.parse_func gemm_src in
  Typecheck.check_func f;
  let g = Prng.create ~seed:61 in
  let a = Mat.random g ~rows:8 ~cols:4 ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:4 ~cols:6 ~lo:(-1.0) ~hi:1.0 in
  let c = Mat.random g ~rows:8 ~cols:6 ~lo:(-1.0) ~hi:1.0 in
  let arr_c = Interp.arr_of_mat c in
  Interp.run f
    ~args:
      [
        ("alpha", Interp.Vfloat 1.5);
        ("beta", Interp.Vfloat 0.5);
        ("C", Interp.Varray arr_c);
        ("A", Interp.Varray (Interp.arr_of_mat a));
        ("B", Interp.Varray (Interp.arr_of_mat b));
      ];
  let expected = Mat.copy c in
  Blas_ref.gemm ~alpha:1.5 ~beta:0.5 ~a ~b ~c:expected ();
  (* binary32 stores introduce bounded rounding *)
  Alcotest.(check bool) "interp close to f64 reference" true
    (Mat.max_abs_diff expected (Interp.mat_of_arr arr_c) < 1e-5)

let test_interp_local_array () =
  let src =
    {|
void two_phase(float A[4], float B[4]) {
  float tmp[4];
  for (int i = 0; i < 4; i++) tmp[i] = A[i] * 2.0;
  for (int i = 0; i < 4; i++) B[i] = tmp[i] + 1.0;
}
|}
  in
  let f = Parser.parse_func src in
  Typecheck.check_func f;
  let a = Interp.arr_of_mat (Mat.of_arrays [| [| 1.0; 2.0; 3.0; 4.0 |] |]) in
  let a = { Interp.dims = [ 4 ]; data = a.Interp.data } in
  let b = Interp.make_array ~dims:[ 4 ] in
  Interp.run f ~args:[ ("A", Interp.Varray a); ("B", Interp.Varray b) ];
  Alcotest.(check (array (float 1e-6))) "through local array" [| 3.0; 5.0; 7.0; 9.0 |]
    b.Interp.data

let test_interp_int_arithmetic () =
  let src =
    {|
void stride(float A[16]) {
  for (int i = 0; i < 4; i++)
    A[i * 4 + 1] = 1.0;
}
|}
  in
  let f = Parser.parse_func src in
  Typecheck.check_func f;
  let a = Interp.make_array ~dims:[ 16 ] in
  Interp.run f ~args:[ ("A", Interp.Varray a) ];
  let ones = Array.to_list a.Interp.data |> List.filteri (fun i _ -> i mod 4 = 1) in
  Alcotest.(check bool) "strided stores" true (List.for_all (fun v -> v = 1.0) ones);
  Alcotest.(check (float 0.0)) "other slots untouched" 0.0 a.Interp.data.(0)

let test_interp_bounds_check () =
  let f = Parser.parse_func "void f(float A[4]) { for (int i = 0; i < 8; i++) A[i] = 0.0; }" in
  Alcotest.(check bool) "out of bounds raises" true
    (try
       Interp.run f ~args:[ ("A", Interp.Varray (Interp.make_array ~dims:[ 4 ])) ];
       false
     with Interp.Runtime_error _ -> true)

let test_interp_missing_arg () =
  let f = Parser.parse_func "void f(float x) { }" in
  Alcotest.(check bool) "missing argument raises" true
    (try
       Interp.run f ~args:[];
       false
     with Interp.Runtime_error _ -> true)

let test_interp_f32_store_rounding () =
  let f = Parser.parse_func "void f(float A[1], float x) { A[0] = x; }" in
  let a = Interp.make_array ~dims:[ 1 ] in
  Interp.run f ~args:[ ("A", Interp.Varray a); ("x", Interp.Vfloat 0.1) ];
  Alcotest.(check bool) "store rounded to binary32" true (a.Interp.data.(0) <> 0.1);
  Alcotest.(check bool) "close to 0.1" true (Float.abs (a.Interp.data.(0) -. 0.1) < 1e-7)

let qcheck_interp_gemm_random_sizes =
  QCheck.Test.make ~name:"interpreted gemm matches reference on random data" ~count:20
    QCheck.small_int (fun seed ->
      let g = Prng.create ~seed:(seed + 500) in
      let m = 1 + Prng.int g ~bound:6
      and n = 1 + Prng.int g ~bound:6
      and k = 1 + Prng.int g ~bound:6 in
      let src =
        Printf.sprintf
          {|
void gemm(float alpha, float beta, float C[%d][%d], float A[%d][%d], float B[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      C[i][j] *= beta;
      for (int k = 0; k < %d; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
|}
          m n m k k n m n k
      in
      let f = Parser.parse_func src in
      Typecheck.check_func f;
      let a = Mat.random g ~rows:m ~cols:k ~lo:(-1.0) ~hi:1.0 in
      let b = Mat.random g ~rows:k ~cols:n ~lo:(-1.0) ~hi:1.0 in
      let c = Mat.random g ~rows:m ~cols:n ~lo:(-1.0) ~hi:1.0 in
      let arr_c = Interp.arr_of_mat c in
      Interp.run f
        ~args:
          [
            ("alpha", Interp.Vfloat 1.0);
            ("beta", Interp.Vfloat 1.0);
            ("C", Interp.Varray arr_c);
            ("A", Interp.Varray (Interp.arr_of_mat a));
            ("B", Interp.Varray (Interp.arr_of_mat b));
          ];
      let expected = Mat.copy c in
      Blas_ref.gemm ~alpha:1.0 ~beta:1.0 ~a ~b ~c:expected ();
      Mat.max_abs_diff expected (Interp.mat_of_arr arr_c) < 1e-5)

let suites =
  [
    ( "lang.lexer",
      [
        Alcotest.test_case "tokens" `Quick test_lexer_tokens;
        Alcotest.test_case "comments" `Quick test_lexer_comments;
        Alcotest.test_case "line numbers" `Quick test_lexer_line_numbers;
        Alcotest.test_case "errors" `Quick test_lexer_error;
      ] );
    ( "lang.parser",
      [
        Alcotest.test_case "gemm shape" `Quick test_parse_gemm_shape;
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "pp roundtrip" `Quick test_parse_pp_roundtrip;
        Alcotest.test_case "loop step" `Quick test_parse_step;
        Alcotest.test_case "errors" `Quick test_parse_errors;
      ] );
    ( "lang.typecheck",
      [
        Alcotest.test_case "accepts gemm" `Quick test_typecheck_accepts_gemm;
        Alcotest.test_case "rank" `Quick test_typecheck_rank;
        Alcotest.test_case "undeclared" `Quick test_typecheck_undeclared;
        Alcotest.test_case "float subscript" `Quick test_typecheck_float_subscript;
        Alcotest.test_case "int = float" `Quick test_typecheck_int_from_float;
        Alcotest.test_case "scoping" `Quick test_typecheck_scoping;
      ] );
    ( "lang.interp",
      [
        Alcotest.test_case "gemm matches blas" `Quick test_interp_gemm_matches_blas;
        Alcotest.test_case "local array" `Quick test_interp_local_array;
        Alcotest.test_case "int arithmetic" `Quick test_interp_int_arithmetic;
        Alcotest.test_case "bounds check" `Quick test_interp_bounds_check;
        Alcotest.test_case "missing argument" `Quick test_interp_missing_arg;
        Alcotest.test_case "f32 rounding" `Quick test_interp_f32_store_rounding;
        QCheck_alcotest.to_alcotest qcheck_interp_gemm_random_sizes;
      ] );
  ]

(* ---------- builder ---------- *)

let test_builder_gemm_equivalent () =
  (* the builder must produce the same AST (up to printing) as parsing *)
  let built =
    let open Builder in
    func "gemm"
      [ scalar Ast.Tfloat "alpha"; scalar Ast.Tfloat "beta";
        array "C" [ 8; 6 ]; array "A" [ 8; 4 ]; array "B" [ 4; 6 ] ]
      [
        for_ "i" (int 8)
          [
            for_ "j" (int 6)
              [
                mul_assign "C" [ var "i"; var "j" ] (var "beta");
                for_ "k" (int 4)
                  [
                    add_assign "C" [ var "i"; var "j" ]
                      (var "alpha" * idx "A" [ var "i"; var "k" ]
                      * idx "B" [ var "k"; var "j" ]);
                  ];
              ];
          ];
      ]
  in
  let parsed = Parser.parse_func gemm_src in
  Alcotest.(check string) "same printed form"
    (Format.asprintf "%a" Ast.pp_func parsed)
    (Format.asprintf "%a" Ast.pp_func built)

let test_builder_typechecks () =
  Alcotest.(check bool) "ill-typed construction rejected" true
    (try
       ignore
         (Builder.func "bad" [ Builder.array "A" [ 4 ] ]
            [ Builder.assign "A" [ Builder.var "i" ] (Builder.float 0.0) ]);
       false
     with Typecheck.Type_error _ -> true)

let test_builder_runs_through_flow () =
  (* a built kernel goes through interp like a parsed one *)
  let built =
    let open Builder in
    func "scale" [ array "A" [ 8 ]; scalar Ast.Tfloat "s" ]
      [ for_ "i" (int 8) [ mul_assign "A" [ var "i" ] (var "s") ] ]
  in
  let a = Interp.make_array ~dims:[ 8 ] in
  Array.iteri (fun i _ -> a.Interp.data.(i) <- float_of_int i) a.Interp.data;
  Interp.run built ~args:[ ("A", Interp.Varray a); ("s", Interp.Vfloat 2.0) ];
  Alcotest.(check (float 0.0)) "doubled" 14.0 a.Interp.data.(7)

let builder_suite =
  ( "lang.builder",
    [
      Alcotest.test_case "matches parsed gemm" `Quick test_builder_gemm_equivalent;
      Alcotest.test_case "typechecks" `Quick test_builder_typechecks;
      Alcotest.test_case "runs" `Quick test_builder_runs_through_flow;
    ] )

let suites = suites @ [ builder_suite ]

(* ---------- lexer number formats ---------- *)

let test_lexer_number_formats () =
  let toks src = List.map fst (Lexer.tokenize src) in
  Alcotest.(check bool) "scientific" true (List.mem (Lexer.FLOAT 1000.0) (toks "1e3"));
  Alcotest.(check bool) "negative exponent" true
    (List.mem (Lexer.FLOAT 0.025) (toks "2.5e-2"));
  Alcotest.(check bool) "f suffix" true (List.mem (Lexer.FLOAT 0.5) (toks "0.5f"));
  Alcotest.(check bool) "plain int stays int" true (List.mem (Lexer.INT 42) (toks "42"))

let test_parse_unary_minus_and_div () =
  let f = Parser.parse_func "void f(float x, float y) { x = -y * 2.0 / 4.0; }" in
  match f.Ast.body with
  | [ Ast.Assign { rhs = Ast.Binop (Ast.Div, Ast.Binop (Ast.Mul, Ast.Neg _, _), _); _ } ] -> ()
  | _ -> Alcotest.fail "unary minus should bind tighter than * and /"

let number_suite =
  ( "lang.numbers",
    [
      Alcotest.test_case "number formats" `Quick test_lexer_number_formats;
      Alcotest.test_case "unary minus / division" `Quick test_parse_unary_minus_and_div;
    ] )

let suites = suites @ [ number_suite ]
