test/test_pcm.ml: Adc Alcotest Array Cell Crossbar Endurance Float Hashtbl List Option QCheck QCheck_alcotest Tdo_linalg Tdo_pcm Tdo_util Wear_leveling
