test/test_lang.ml: Alcotest Array Ast Builder Float Format Interp Lexer List Parser Printf QCheck QCheck_alcotest Tdo_lang Tdo_linalg Tdo_util Typecheck
