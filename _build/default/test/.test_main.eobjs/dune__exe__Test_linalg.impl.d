test/test_linalg.ml: Alcotest Array Blas_ref Float Mat QCheck QCheck_alcotest Quant Tdo_linalg Tdo_util
