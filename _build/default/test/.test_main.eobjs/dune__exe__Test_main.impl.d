test/test_main.ml: Alcotest Test_ablations Test_cimacc Test_core Test_energy Test_ir Test_lang Test_linalg Test_pcm Test_poly Test_runtime Test_sim Test_tactics Test_util
