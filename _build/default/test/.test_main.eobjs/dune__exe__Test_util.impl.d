test/test_util.ml: Alcotest Array Float Gen List Pretty Prng QCheck QCheck_alcotest Stats String Tdo_util
