test/test_energy.ml: Alcotest List Result String Tdo_energy Tdo_linalg Tdo_runtime Tdo_sim Tdo_util
