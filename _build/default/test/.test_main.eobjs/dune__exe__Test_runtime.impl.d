test/test_runtime.ml: Alcotest Api Cma Driver List Option Platform QCheck QCheck_alcotest Result Tdo_cimacc Tdo_linalg Tdo_pcm Tdo_runtime Tdo_sim Tdo_util
