test/test_ablations.ml: Alcotest List Tdo_cim Tdo_polybench
