test/test_cimacc.ml: Accel Alcotest Array Context_regs Digital_logic Int32 List Micro_engine QCheck QCheck_alcotest String Tdo_cimacc Tdo_linalg Tdo_pcm Tdo_sim Tdo_util Timeline
