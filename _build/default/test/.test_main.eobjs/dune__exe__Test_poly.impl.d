test/test_poly.ml: Access Affine Alcotest Codegen Deps Domain List Option Printf QCheck QCheck_alcotest Schedule_tree Scop_detect String Tdo_ir Tdo_lang Tdo_linalg Tdo_poly Tdo_runtime Tdo_util
