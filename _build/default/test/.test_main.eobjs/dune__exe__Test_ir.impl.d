test/test_ir.ml: Alcotest Array Exec Format Ir List Lower Printf QCheck QCheck_alcotest String Tdo_cimacc Tdo_ir Tdo_lang Tdo_linalg Tdo_pcm Tdo_runtime Tdo_sim Tdo_util
