test/test_sim.ml: Alcotest Bus Bytes Cache Cpu Dma Event_queue Float Int32 List Memory Mmio QCheck QCheck_alcotest Tdo_sim Time_base
