test/test_core.ml: Alcotest Float Lazy List Result String Tdo_cim Tdo_cimacc Tdo_ir Tdo_lang Tdo_linalg Tdo_polybench
