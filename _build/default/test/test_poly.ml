open Tdo_poly
module Ast = Tdo_lang.Ast
module Parser = Tdo_lang.Parser
module Interp = Tdo_lang.Interp
module Lower = Tdo_ir.Lower
module Exec = Tdo_ir.Exec
module Platform = Tdo_runtime.Platform
module Prng = Tdo_util.Prng
module Mat = Tdo_linalg.Mat

let parse_expr_int src =
  (* parse "void f(...) { t = <expr>; }" and pull the rhs out *)
  let f = Parser.parse_func (Printf.sprintf "void f(int t, int i, int j, int n) { t = %s; }" src) in
  match f.Ast.body with
  | [ Ast.Assign { rhs; _ } ] -> rhs
  | _ -> Alcotest.fail "unexpected parse"

(* ---------- Affine ---------- *)

let test_affine_of_expr () =
  match Affine.of_expr (parse_expr_int "2 * i + j - 3") with
  | None -> Alcotest.fail "affine expression rejected"
  | Some a ->
      Alcotest.(check int) "coeff i" 2 (Affine.coeff a "i");
      Alcotest.(check int) "coeff j" 1 (Affine.coeff a "j");
      Alcotest.(check int) "const" (-3) (Affine.constant a);
      Alcotest.(check (list string)) "vars" [ "i"; "j" ] (Affine.vars a)

let test_affine_rejects_products () =
  Alcotest.(check bool) "i*j rejected" true (Affine.of_expr (parse_expr_int "i * j") = None);
  Alcotest.(check bool) "i/2 rejected" true (Affine.of_expr (parse_expr_int "i / 2") = None);
  Alcotest.(check bool) "2*i accepted" true (Affine.of_expr (parse_expr_int "2 * i") <> None);
  Alcotest.(check bool) "i*2 accepted" true (Affine.of_expr (parse_expr_int "i * 2") <> None)

let test_affine_roundtrip () =
  let samples = [ "2 * i + j - 3"; "i"; "0"; "-i + 4"; "3 * n - 2 * i" ] in
  List.iter
    (fun src ->
      let a = Option.get (Affine.of_expr (parse_expr_int src)) in
      let b = Option.get (Affine.of_expr (Affine.to_expr a)) in
      Alcotest.(check bool) (src ^ " roundtrips") true (Affine.equal a b))
    samples

let test_affine_subst () =
  let a = Option.get (Affine.of_expr (parse_expr_int "2 * i + j")) in
  let g = Option.get (Affine.of_expr (parse_expr_int "n + 1")) in
  let s = Affine.subst a "i" g in
  Alcotest.(check int) "coeff n" 2 (Affine.coeff s "n");
  Alcotest.(check int) "coeff j" 1 (Affine.coeff s "j");
  Alcotest.(check int) "const" 2 (Affine.constant s);
  Alcotest.(check int) "i eliminated" 0 (Affine.coeff s "i")

let test_affine_algebra () =
  let i = Affine.var "i" and j = Affine.var "j" in
  let e = Affine.add (Affine.scale 3 i) (Affine.sub j (Affine.const 5)) in
  Alcotest.(check int) "3i" 3 (Affine.coeff e "i");
  Alcotest.(check bool) "sub self is zero" true
    (Affine.equal (Affine.sub e e) (Affine.const 0));
  Alcotest.(check bool) "is_constant" true (Affine.is_constant (Affine.const 7) = Some 7)

(* ---------- Access ---------- *)

let test_access_signature () =
  let lv indices = { Ast.base = "A"; indices } in
  let acc = Option.get (Access.of_lvalue (lv [ Ast.Var "i"; Ast.Var "k" ])) in
  Alcotest.(check bool) "sig (i,k)" true
    (Access.index_signature acc ~iters:[ "i"; "j"; "k" ] = Some [ `Iter 0; `Iter 2 ]);
  let acc2 = Option.get (Access.of_lvalue (lv [ Ast.Int_lit 0; Ast.Var "j" ])) in
  Alcotest.(check bool) "constant subscript is Other" true
    (Access.index_signature acc2 ~iters:[ "i"; "j" ] = Some [ `Other; `Iter 1 ]);
  let acc3 =
    Option.get (Access.of_lvalue (lv [ Ast.Binop (Ast.Add, Ast.Var "i", Ast.Var "j") ]))
  in
  Alcotest.(check bool) "i+j has no plain signature" true
    (Access.index_signature acc3 ~iters:[ "i"; "j" ] = None)

let test_access_reads () =
  let rhs = parse_expr_int "i" in
  ignore rhs;
  let f =
    Parser.parse_func
      "void f(float C[4][4], float A[4][4], float B[4][4], int i, int j, int k) { C[i][j] = C[i][j] + A[i][k] * B[k][j]; }"
  in
  match f.Ast.body with
  | [ Ast.Assign { rhs; _ } ] -> (
      match Access.reads_of_expr rhs with
      | None -> Alcotest.fail "affine reads rejected"
      | Some reads ->
          Alcotest.(check (list string)) "reads in order" [ "C"; "A"; "B" ]
            (List.map (fun (a : Access.t) -> a.Access.array) reads))
  | _ -> Alcotest.fail "unexpected parse"

(* ---------- SCoP detection ---------- *)

let gemm_src =
  {|
void gemm(float alpha, float beta, float C[8][6], float A[8][4], float B[4][6]) {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 6; j++) {
      C[i][j] *= beta;
      for (int k = 0; k < 4; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
|}

let detect_src src = Scop_detect.detect_func (Lower.func (Parser.parse_func src))

let test_scop_gemm_shape () =
  match detect_src gemm_src with
  | Error e -> Alcotest.failf "gemm is a SCoP: %s" e
  | Ok tree -> (
      match tree with
      | Schedule_tree.Band
          ( { Schedule_tree.iter = "i"; _ },
            Schedule_tree.Band
              ( { Schedule_tree.iter = "j"; _ },
                Schedule_tree.Seq
                  [ Schedule_tree.Stmt _; Schedule_tree.Band ({ Schedule_tree.iter = "k"; _ }, Schedule_tree.Stmt _) ]
              ) ) ->
          Alcotest.(check int) "two statements" 2 (List.length (Schedule_tree.stmts tree))
      | _ -> Alcotest.failf "unexpected tree:@.%a" (fun ppf t -> Schedule_tree.pp ppf t) tree)

let test_scop_rejects_non_affine () =
  let src =
    "void f(float A[16]) { for (int i = 0; i < 4; i++) for (int j = 0; j < 4; j++) A[i * j] = 0.0; }"
  in
  match detect_src src with
  | Ok _ -> Alcotest.fail "non-affine subscript accepted"
  | Error reason -> Alcotest.(check bool) "mentions subscript" true
      (String.length reason > 0)

let test_scop_rejects_scalar_write () =
  let src = "void f(float A[4]) { float t; for (int i = 0; i < 4; i++) t = A[i]; }" in
  match detect_src src with
  | Ok _ -> Alcotest.fail "scalar write accepted"
  | Error _ -> ()

let test_band_extent () =
  match detect_src gemm_src with
  | Error e -> Alcotest.failf "detect: %s" e
  | Ok (Schedule_tree.Band (b, _)) ->
      Alcotest.(check (option int)) "extent of i" (Some 8) (Schedule_tree.band_extent b)
  | Ok _ -> Alcotest.fail "expected band root"

(* ---------- Deps ---------- *)

let two_kernel_src shared =
  (* two GEMMs; if [shared] the second reads A again (independent),
     otherwise it reads the first kernel's output C (dependent) *)
  Printf.sprintf
    {|
void f(float C[4][4], float D[4][4], float A[4][4], float B[4][4], float E[4][4]) {
  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 4; j++)
      for (int k = 0; k < 4; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 4; j++)
      for (int k = 0; k < 4; k++)
        D[i][j] += %s[i][k] * E[k][j];
}
|}
    (if shared then "A" else "C")

let test_deps_independence () =
  let pair shared =
    match detect_src (two_kernel_src shared) with
    | Ok (Schedule_tree.Seq [ x; y ]) -> (x, y)
    | Ok _ | Error _ -> Alcotest.fail "expected two kernels"
  in
  let x, y = pair true in
  Alcotest.(check bool) "shared input is independent (Listing 2)" true (Deps.independent x y);
  let x, y = pair false in
  Alcotest.(check bool) "flow dependence detected" false (Deps.independent x y)

let test_deps_read_write_sets () =
  match detect_src gemm_src with
  | Error e -> Alcotest.failf "detect: %s" e
  | Ok tree ->
      Alcotest.(check (list string)) "writes" [ "C" ]
        (Deps.Strings.elements (Deps.arrays_written tree));
      Alcotest.(check (list string)) "reads (includes += target)" [ "A"; "B"; "C" ]
        (Deps.Strings.elements (Deps.arrays_read tree))

(* ---------- Codegen roundtrip ---------- *)

let test_codegen_semantics_preserved () =
  let ast = Parser.parse_func gemm_src in
  let f = Lower.func ast in
  let tree =
    match Scop_detect.detect_func f with Ok t -> t | Error e -> Alcotest.failf "detect: %s" e
  in
  let f' = Codegen.func_with_body f tree in
  let g = Prng.create ~seed:81 in
  let a = Mat.random g ~rows:8 ~cols:4 ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:4 ~cols:6 ~lo:(-1.0) ~hi:1.0 in
  let c = Mat.random g ~rows:8 ~cols:6 ~lo:(-1.0) ~hi:1.0 in
  let run func =
    let arr = Interp.arr_of_mat c in
    let platform = Platform.create () in
    ignore
      (Exec.run func ~platform
         ~args:
           [
             ("alpha", Interp.Vfloat 1.5);
             ("beta", Interp.Vfloat 0.5);
             ("C", Interp.Varray arr);
             ("A", Interp.Varray (Interp.arr_of_mat a));
             ("B", Interp.Varray (Interp.arr_of_mat b));
           ]);
    Interp.mat_of_arr arr
  in
  Alcotest.(check (float 0.0)) "codegen output is bit-identical" 0.0
    (Mat.max_abs_diff (run f) (run f'))

let test_codegen_roundtrip_structure () =
  let f = Lower.func (Parser.parse_func gemm_src) in
  let tree =
    match Scop_detect.detect_func f with Ok t -> t | Error e -> Alcotest.failf "detect: %s" e
  in
  let f' = Codegen.func_with_body f tree in
  match Scop_detect.detect_func f' with
  | Error e -> Alcotest.failf "regenerated code is still a SCoP: %s" e
  | Ok tree' ->
      Alcotest.(check int) "same statement count"
        (List.length (Schedule_tree.stmts tree))
        (List.length (Schedule_tree.stmts tree'))

let suites =
  [
    ( "poly.affine",
      [
        Alcotest.test_case "of_expr" `Quick test_affine_of_expr;
        Alcotest.test_case "rejects products" `Quick test_affine_rejects_products;
        Alcotest.test_case "roundtrip" `Quick test_affine_roundtrip;
        Alcotest.test_case "subst" `Quick test_affine_subst;
        Alcotest.test_case "algebra" `Quick test_affine_algebra;
      ] );
    ( "poly.access",
      [
        Alcotest.test_case "signatures" `Quick test_access_signature;
        Alcotest.test_case "reads extraction" `Quick test_access_reads;
      ] );
    ( "poly.scop",
      [
        Alcotest.test_case "gemm tree shape" `Quick test_scop_gemm_shape;
        Alcotest.test_case "rejects non-affine" `Quick test_scop_rejects_non_affine;
        Alcotest.test_case "rejects scalar writes" `Quick test_scop_rejects_scalar_write;
        Alcotest.test_case "band extent" `Quick test_band_extent;
      ] );
    ( "poly.deps",
      [
        Alcotest.test_case "independence (Listing 2)" `Quick test_deps_independence;
        Alcotest.test_case "read/write sets" `Quick test_deps_read_write_sets;
      ] );
    ( "poly.codegen",
      [
        Alcotest.test_case "semantics preserved" `Quick test_codegen_semantics_preserved;
        Alcotest.test_case "roundtrip structure" `Quick test_codegen_roundtrip_structure;
      ] );
  ]

(* ---------- Domain (integer box sets) ---------- *)

let test_domain_box_basics () =
  let b = Domain.box_exn [ (0, 3); (2, 5) ] in
  Alcotest.(check int) "rank" 2 (Domain.box_rank b);
  Alcotest.(check bool) "empty box rejected" true (Domain.box [ (3, 2) ] = None);
  let d = Domain.of_box b in
  Alcotest.(check bool) "contains corner" true (Domain.contains d [ 0; 2 ]);
  Alcotest.(check bool) "contains far corner" true (Domain.contains d [ 3; 5 ]);
  Alcotest.(check bool) "excludes outside" false (Domain.contains d [ 4; 2 ]);
  Alcotest.(check int) "cardinal" 16 (Domain.cardinal d)

let test_domain_set_algebra () =
  let d1 = Domain.of_box (Domain.box_exn [ (0, 3) ]) in
  let d2 = Domain.of_box (Domain.box_exn [ (2, 5) ]) in
  let d3 = Domain.of_box (Domain.box_exn [ (10, 12) ]) in
  Alcotest.(check bool) "overlap detected" false (Domain.disjoint d1 d2);
  Alcotest.(check bool) "disjoint detected" true (Domain.disjoint d1 d3);
  let u = Domain.union d1 d2 in
  Alcotest.(check int) "union cardinal (inclusion-exclusion)" 6 (Domain.cardinal u);
  let i = Domain.inter d1 d2 in
  Alcotest.(check int) "intersection cardinal" 2 (Domain.cardinal i);
  Alcotest.(check bool) "empty intersection" true (Domain.is_empty (Domain.inter d1 d3))

let qcheck_domain_inter_subset =
  QCheck.Test.make ~name:"intersection points lie in both domains" ~count:100 QCheck.small_int
    (fun seed ->
      let g = Prng.create ~seed in
      let random_box () =
        let lo = Prng.int g ~bound:10 and len = Prng.int g ~bound:6 in
        let lo2 = Prng.int g ~bound:10 and len2 = Prng.int g ~bound:6 in
        Domain.box_exn [ (lo, lo + len); (lo2, lo2 + len2) ]
      in
      let d1 = Domain.of_box (random_box ()) and d2 = Domain.of_box (random_box ()) in
      let i = Domain.inter d1 d2 in
      let ok = ref true in
      for x = 0 to 16 do
        for y = 0 to 16 do
          let p = [ x; y ] in
          let expected = Domain.contains d1 p && Domain.contains d2 p in
          if Domain.contains i p <> expected then ok := false
        done
      done;
      !ok)

let qcheck_domain_cardinal_counts =
  QCheck.Test.make ~name:"union cardinal equals brute-force point count" ~count:100
    QCheck.small_int (fun seed ->
      let g = Prng.create ~seed in
      let random_box () =
        let lo = Prng.int g ~bound:8 and len = Prng.int g ~bound:5 in
        Domain.box_exn [ (lo, lo + len) ]
      in
      let d =
        Domain.of_boxes ~rank:1 [ random_box (); random_box (); random_box () ]
      in
      let brute = ref 0 in
      for x = 0 to 20 do
        if Domain.contains d [ x ] then incr brute
      done;
      Domain.cardinal d = !brute)

(* ---------- access regions ---------- *)

let test_access_region () =
  let f =
    Parser.parse_func
      "void f(float A[16][16], int i, int j) { A[i + 2][2 * j] = 1.0; }"
  in
  let access =
    match f.Ast.body with
    | [ Ast.Assign { lhs; _ } ] -> Option.get (Access.of_lvalue lhs)
    | _ -> Alcotest.fail "unexpected parse"
  in
  match Access.region access ~extents:[ ("i", (0, 3)); ("j", (0, 5)) ] with
  | None -> Alcotest.fail "region should be bounded"
  | Some box ->
      Alcotest.(check (list (pair int int))) "bounds" [ (2, 5); (0, 10) ]
        (Domain.box_bounds box)

let test_access_region_negative_coeff () =
  let f = Parser.parse_func "void f(float A[16], int i) { A[8 - i] = 1.0; }" in
  let access =
    match f.Ast.body with
    | [ Ast.Assign { lhs; _ } ] -> Option.get (Access.of_lvalue lhs)
    | _ -> Alcotest.fail "unexpected parse"
  in
  match Access.region access ~extents:[ ("i", (0, 3)) ] with
  | None -> Alcotest.fail "region should be bounded"
  | Some box ->
      Alcotest.(check (list (pair int int))) "bounds flip" [ (5, 8) ] (Domain.box_bounds box)

let test_access_region_unknown_var () =
  let f = Parser.parse_func "void f(float A[16], int i, int n) { A[i + n] = 1.0; }" in
  let access =
    match f.Ast.body with
    | [ Ast.Assign { lhs; _ } ] -> Option.get (Access.of_lvalue lhs)
    | _ -> Alcotest.fail "unexpected parse"
  in
  Alcotest.(check bool) "unbounded var yields None" true
    (Access.region access ~extents:[ ("i", (0, 3)) ] = None)

(* ---------- region-refined independence ---------- *)

let test_deps_disjoint_slices_independent () =
  (* both nests write C, but provably disjoint row ranges *)
  let src =
    {|
void halves(float C[8][4], float A[4][4], float B[4][4]) {
  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 4; j++)
      C[i][j] += A[i][j];
  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 4; j++)
      C[i + 4][j] += B[i][j];
}
|}
  in
  match detect_src src with
  | Ok (Schedule_tree.Seq [ x; y ]) ->
      Alcotest.(check bool) "disjoint slices are independent" true (Deps.independent x y)
  | Ok _ | Error _ -> Alcotest.fail "expected two kernels"

let test_deps_overlapping_slices_dependent () =
  let src =
    {|
void overlap(float C[8][4], float A[4][4], float B[4][4]) {
  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 4; j++)
      C[i][j] += A[i][j];
  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 4; j++)
      C[i + 2][j] += B[i][j];
}
|}
  in
  match detect_src src with
  | Ok (Schedule_tree.Seq [ x; y ]) ->
      Alcotest.(check bool) "overlapping slices conflict" false (Deps.independent x y)
  | Ok _ | Error _ -> Alcotest.fail "expected two kernels"

let domain_suite =
  ( "poly.domain",
    [
      Alcotest.test_case "box basics" `Quick test_domain_box_basics;
      Alcotest.test_case "set algebra" `Quick test_domain_set_algebra;
      QCheck_alcotest.to_alcotest qcheck_domain_inter_subset;
      QCheck_alcotest.to_alcotest qcheck_domain_cardinal_counts;
    ] )

let region_suite =
  ( "poly.regions",
    [
      Alcotest.test_case "access region" `Quick test_access_region;
      Alcotest.test_case "negative coefficients" `Quick test_access_region_negative_coeff;
      Alcotest.test_case "unknown variable" `Quick test_access_region_unknown_var;
      Alcotest.test_case "disjoint slices independent" `Quick
        test_deps_disjoint_slices_independent;
      Alcotest.test_case "overlapping slices dependent" `Quick
        test_deps_overlapping_slices_dependent;
    ] )

let suites = suites @ [ domain_suite; region_suite ]
