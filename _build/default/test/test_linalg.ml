open Tdo_linalg
module Prng = Tdo_util.Prng

let mat_testable = Alcotest.testable Mat.pp (Mat.equal_eps ~eps:1e-9)

let test_mat_create_get_set () =
  let m = Mat.create ~rows:3 ~cols:4 in
  Alcotest.(check int) "rows" 3 (Mat.rows m);
  Alcotest.(check int) "cols" 4 (Mat.cols m);
  Alcotest.(check (float 0.0)) "zero init" 0.0 (Mat.get m 2 3);
  Mat.set m 1 2 5.5;
  Alcotest.(check (float 0.0)) "set/get" 5.5 (Mat.get m 1 2)

let test_mat_bounds () =
  let m = Mat.create ~rows:2 ~cols:2 in
  Alcotest.check_raises "row overflow" (Invalid_argument "Mat: index (2,0) out of 2x2")
    (fun () -> ignore (Mat.get m 2 0));
  Alcotest.check_raises "negative col" (Invalid_argument "Mat: index (0,-1) out of 2x2")
    (fun () -> ignore (Mat.get m 0 (-1)))

let test_mat_of_arrays_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_arrays: ragged input") (fun () ->
      ignore (Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0 |] |]))

let test_mat_transpose () =
  let m = Mat.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let t = Mat.transpose m in
  Alcotest.check mat_testable "transpose"
    (Mat.of_arrays [| [| 1.0; 4.0 |]; [| 2.0; 5.0 |]; [| 3.0; 6.0 |] |])
    t

let test_mat_row_col () =
  let m = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (array (float 0.0))) "row" [| 3.0; 4.0 |] (Mat.row m 1);
  Alcotest.(check (array (float 0.0))) "col" [| 2.0; 4.0 |] (Mat.col m 1)

let test_mat_copy_isolated () =
  let m = Mat.create ~rows:2 ~cols:2 in
  let c = Mat.copy m in
  Mat.set m 0 0 9.0;
  Alcotest.(check (float 0.0)) "copy unaffected" 0.0 (Mat.get c 0 0)

let test_gemm_identity () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let id = Mat.init ~rows:2 ~cols:2 ~f:(fun i j -> if i = j then 1.0 else 0.0) in
  let c = Mat.create ~rows:2 ~cols:2 in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b:id ~c ();
  Alcotest.check mat_testable "A*I = A" a c

let test_gemm_known () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Mat.of_arrays [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  Blas_ref.gemm ~alpha:2.0 ~beta:3.0 ~a ~b ~c ();
  Alcotest.check mat_testable "2AB + 3C"
    (Mat.of_arrays [| [| 41.0; 47.0 |]; [| 89.0; 103.0 |] |])
    c

let test_gemm_transpose_flags () =
  let g = Prng.create ~seed:10 in
  let a = Mat.random g ~rows:3 ~cols:5 ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:4 ~cols:5 ~lo:(-1.0) ~hi:1.0 in
  let c1 = Mat.create ~rows:3 ~cols:4 in
  Blas_ref.gemm ~trans_b:Blas_ref.Transpose ~alpha:1.0 ~beta:0.0 ~a ~b ~c:c1 ();
  let c2 = Mat.create ~rows:3 ~cols:4 in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b:(Mat.transpose b) ~c:c2 ();
  Alcotest.check mat_testable "transpose flag = explicit transpose" c2 c1

let test_gemm_shape_mismatch () =
  let a = Mat.create ~rows:2 ~cols:3 in
  let b = Mat.create ~rows:4 ~cols:2 in
  let c = Mat.create ~rows:2 ~cols:2 in
  Alcotest.check_raises "inner mismatch"
    (Invalid_argument "Blas_ref.gemm: inner dimensions differ") (fun () ->
      Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b ~c ())

let test_gemv_known () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let x = [| 1.0; 1.0 |] in
  let y = [| 10.0; 10.0 |] in
  Blas_ref.gemv ~alpha:1.0 ~beta:0.5 ~a ~x ~y ();
  Alcotest.(check (array (float 1e-9))) "gemv" [| 8.0; 12.0 |] y

let test_gemv_transpose () =
  let a = Mat.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let x = [| 1.0; 1.0 |] in
  let y = Array.make 3 0.0 in
  Blas_ref.gemv ~trans_a:Blas_ref.Transpose ~alpha:1.0 ~beta:0.0 ~a ~x ~y ();
  Alcotest.(check (array (float 1e-9))) "A^T x" [| 5.0; 7.0; 9.0 |] y

let test_gemm_as_gemvs () =
  (* GEMM must equal a sequence of column GEMVs: this is exactly the
     micro-engine's decomposition. *)
  let g = Prng.create ~seed:11 in
  let m = 6 and k = 5 and n = 4 in
  let a = Mat.random g ~rows:m ~cols:k ~lo:(-2.0) ~hi:2.0 in
  let b = Mat.random g ~rows:k ~cols:n ~lo:(-2.0) ~hi:2.0 in
  let c = Mat.create ~rows:m ~cols:n in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b ~c ();
  let c' = Mat.create ~rows:m ~cols:n in
  for j = 0 to n - 1 do
    let x = Mat.col b j in
    let y = Array.make m 0.0 in
    Blas_ref.gemv ~alpha:1.0 ~beta:0.0 ~a ~x ~y ();
    Array.iteri (fun i v -> Mat.set c' i j v) y
  done;
  Alcotest.check mat_testable "gemm = gemv per column" c c'

let test_batched_gemm () =
  let a1 = Mat.of_arrays [| [| 1.0 |] |] and b1 = Mat.of_arrays [| [| 2.0 |] |] in
  let a2 = Mat.of_arrays [| [| 3.0 |] |] and b2 = Mat.of_arrays [| [| 4.0 |] |] in
  let c1 = Mat.create ~rows:1 ~cols:1 and c2 = Mat.create ~rows:1 ~cols:1 in
  Blas_ref.gemm_batched ~alpha:1.0 ~beta:0.0 ~a:[ a1; a2 ] ~b:[ b1; b2 ] ~c:[ c1; c2 ] ();
  Alcotest.(check (float 1e-9)) "batch 0" 2.0 (Mat.get c1 0 0);
  Alcotest.(check (float 1e-9)) "batch 1" 12.0 (Mat.get c2 0 0)

let test_conv2d_known () =
  let input = Mat.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |]; [| 7.0; 8.0; 9.0 |] |] in
  let kernel = Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let out = Blas_ref.conv2d ~input ~kernel in
  Alcotest.check mat_testable "valid conv"
    (Mat.of_arrays [| [| 6.0; 8.0 |]; [| 12.0; 14.0 |] |])
    out

let test_dot () =
  Alcotest.(check (float 1e-9)) "dot" 32.0 (Blas_ref.dot [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |])

let test_quant_roundtrip_exact_codes () =
  let s = Quant.scheme_for ~bits:8 ~max_abs:127.0 in
  for code = -128 to 127 do
    let v = Quant.dequantize s code in
    Alcotest.(check int) "code roundtrip" code (Quant.quantize s v)
  done

let test_quant_error_bound () =
  let g = Prng.create ~seed:12 in
  let s = Quant.scheme_for ~bits:8 ~max_abs:10.0 in
  let bound = Quant.quantization_error_bound s in
  for _ = 1 to 1000 do
    let v = Prng.float_range g ~lo:(-10.0) ~hi:10.0 in
    let err = Float.abs (Quant.dequantize s (Quant.quantize s v) -. v) in
    Alcotest.(check bool) "within half-ulp" true (err <= bound +. 1e-12)
  done

let test_quant_saturation () =
  let s = Quant.scheme_for ~bits:8 ~max_abs:1.0 in
  Alcotest.(check int) "saturates high" 127 (Quant.quantize s 50.0);
  Alcotest.(check int) "saturates low" (-128) (Quant.quantize s (-50.0))

let test_nibble_split () =
  for code = -128 to 127 do
    let msb, lsb = Quant.split_nibbles code in
    Alcotest.(check bool) "lsb in range" true (lsb >= 0 && lsb <= 15);
    Alcotest.(check bool) "msb in range" true (msb >= -8 && msb <= 7);
    Alcotest.(check int) "recombine" code (Quant.combine_nibbles ~msb ~lsb)
  done

let qcheck_gemm_linearity =
  QCheck.Test.make ~name:"gemm is linear in alpha" ~count:50
    QCheck.(pair (float_range (-4.0) 4.0) small_int)
    (fun (alpha, seed) ->
      let g = Prng.create ~seed in
      let a = Mat.random g ~rows:3 ~cols:3 ~lo:(-1.0) ~hi:1.0 in
      let b = Mat.random g ~rows:3 ~cols:3 ~lo:(-1.0) ~hi:1.0 in
      let c1 = Mat.create ~rows:3 ~cols:3 in
      Blas_ref.gemm ~alpha ~beta:0.0 ~a ~b ~c:c1 ();
      let c2 = Mat.create ~rows:3 ~cols:3 in
      Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b ~c:c2 ();
      let scaled = Mat.map ~f:(fun v -> alpha *. v) c2 in
      Mat.max_abs_diff c1 scaled < 1e-9)

let qcheck_transpose_involution =
  QCheck.Test.make ~name:"transpose is an involution" ~count:100 QCheck.small_int (fun seed ->
      let g = Prng.create ~seed in
      let rows = 1 + Prng.int g ~bound:8 and cols = 1 + Prng.int g ~bound:8 in
      let m = Mat.random g ~rows ~cols ~lo:(-5.0) ~hi:5.0 in
      Mat.max_abs_diff m (Mat.transpose (Mat.transpose m)) = 0.0)

let qcheck_conv_impulse =
  QCheck.Test.make ~name:"conv with unit impulse reproduces kernel" ~count:50 QCheck.small_int
    (fun seed ->
      let g = Prng.create ~seed in
      let kr = 1 + Prng.int g ~bound:3 and kc = 1 + Prng.int g ~bound:3 in
      let kernel = Mat.random g ~rows:kr ~cols:kc ~lo:(-1.0) ~hi:1.0 in
      (* Input = single 1 at the top-left of a kernel-sized window. *)
      let input =
        Mat.init ~rows:(kr + 2) ~cols:(kc + 2) ~f:(fun i j -> if i = 0 && j = 0 then 1.0 else 0.0)
      in
      let out = Blas_ref.conv2d ~input ~kernel in
      Float.abs (Mat.get out 0 0 -. Mat.get kernel 0 0) < 1e-12)

let suites =
  [
    ( "linalg.mat",
      [
        Alcotest.test_case "create/get/set" `Quick test_mat_create_get_set;
        Alcotest.test_case "bounds checks" `Quick test_mat_bounds;
        Alcotest.test_case "ragged input" `Quick test_mat_of_arrays_ragged;
        Alcotest.test_case "transpose" `Quick test_mat_transpose;
        Alcotest.test_case "row/col" `Quick test_mat_row_col;
        Alcotest.test_case "copy isolation" `Quick test_mat_copy_isolated;
        QCheck_alcotest.to_alcotest qcheck_transpose_involution;
      ] );
    ( "linalg.blas",
      [
        Alcotest.test_case "gemm identity" `Quick test_gemm_identity;
        Alcotest.test_case "gemm known values" `Quick test_gemm_known;
        Alcotest.test_case "gemm transpose flags" `Quick test_gemm_transpose_flags;
        Alcotest.test_case "gemm shape mismatch" `Quick test_gemm_shape_mismatch;
        Alcotest.test_case "gemv known values" `Quick test_gemv_known;
        Alcotest.test_case "gemv transpose" `Quick test_gemv_transpose;
        Alcotest.test_case "gemm = column gemvs" `Quick test_gemm_as_gemvs;
        Alcotest.test_case "batched gemm" `Quick test_batched_gemm;
        Alcotest.test_case "conv2d known values" `Quick test_conv2d_known;
        Alcotest.test_case "dot" `Quick test_dot;
        QCheck_alcotest.to_alcotest qcheck_gemm_linearity;
        QCheck_alcotest.to_alcotest qcheck_conv_impulse;
      ] );
    ( "linalg.quant",
      [
        Alcotest.test_case "code roundtrip" `Quick test_quant_roundtrip_exact_codes;
        Alcotest.test_case "error bound" `Quick test_quant_error_bound;
        Alcotest.test_case "saturation" `Quick test_quant_saturation;
        Alcotest.test_case "nibble split/recombine" `Quick test_nibble_split;
      ] );
  ]
