(* Regenerates every table and figure of the paper. *)

open Cmdliner
module E = Tdo_cim.Experiments
module Dataset = Tdo_polybench.Dataset

let dataset_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Dataset.of_string s) in
  let print ppf d = Format.fprintf ppf "%s" (Dataset.to_string d) in
  Arg.(
    value
    & opt (conv (parse, print)) Dataset.Medium
    & info [ "d"; "dataset" ] ~docv:"SIZE" ~doc:"Problem size: mini, small, medium or large.")

let n_arg default =
  Arg.(value & opt int default & info [ "n" ] ~docv:"N" ~doc:"Square-matrix extent.")

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"Print Table I (system configuration).")
    Term.(const E.print_table1 $ const ())

let fig1_cmd =
  Cmd.v (Cmd.info "fig1" ~doc:"Print Fig. 1 (PCM programming pulses).")
    Term.(const E.print_fig1 $ const ())

let fig2d_cmd =
  let run n = E.print_fig2d ~n () in
  Cmd.v (Cmd.info "fig2d" ~doc:"Print Fig. 2(d) (offload timeline).")
    Term.(const run $ n_arg 16)

let fig5_cmd =
  let run n = E.print_fig5 ~n () in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Print Fig. 5 (lifetime vs endurance, naive vs smart mapping).")
    Term.(const run $ n_arg 64)

let breakdown_flag =
  Arg.(
    value & flag
    & info [ "breakdown" ] ~doc:"Also print the per-kernel energy split by Table-I component.")

let fig6_cmd =
  let run dataset breakdown = E.print_fig6 ~dataset ~breakdown () in
  Cmd.v (Cmd.info "fig6" ~doc:"Print Fig. 6 (energy and EDP across PolyBench).")
    Term.(const run $ dataset_arg $ breakdown_flag)

let ablations_cmd =
  Cmd.v
    (Cmd.info "ablations"
       ~doc:
         "Run the ablation studies: operand pinning, fusion, double buffering, selective \
          offload, crossbar geometry, analog noise.")
    Term.(const Tdo_cim.Ablations.print_all $ const ())

let all_cmd =
  let run dataset =
    E.print_table1 ();
    print_newline ();
    E.print_fig1 ();
    print_newline ();
    E.print_fig2d ();
    print_newline ();
    E.print_fig5 ();
    print_newline ();
    E.print_fig6 ~dataset ~breakdown:true ();
    print_newline ();
    Tdo_cim.Ablations.print_all ()
  in
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every table and figure, plus the ablation studies.")
    Term.(const run $ dataset_arg)

let () =
  let info = Cmd.info "experiments" ~doc:"TDO-CIM paper experiment driver." in
  exit
    (Cmd.eval
       (Cmd.group info
          [ table1_cmd; fig1_cmd; fig2d_cmd; fig5_cmd; fig6_cmd; ablations_cmd; all_cmd ]))
