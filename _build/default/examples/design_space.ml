(* Design-space exploration, as the paper's conclusion invites:
   "perform domain-space exploration by tweaking our simulator".

   Sweeps the accelerator's two main architectural knobs — crossbar
   geometry and tile count — for one representative GEMM-like workload
   (3mm: three chained matrix products, the first two independent) and
   prints energy, run time and EDP for every configuration, normalised
   to the Arm-A7 host.

   Run with: dune exec examples/design_space.exe *)

module Flow = Tdo_cim.Flow
module Kernels = Tdo_polybench.Kernels
module Platform = Tdo_runtime.Platform
module Offload = Tdo_tactics.Offload
module Pretty = Tdo_util.Pretty

let n = 64
let seed = 23

let benchmark = Result.get_ok (Kernels.find "3mm")
let source = benchmark.Kernels.source ~n

let host =
  let args, _ = benchmark.Kernels.make_args ~n ~seed in
  fst (Flow.run_source ~options:Flow.o3 source ~args)

let measure ~xbar ~tiles =
  let engine =
    {
      Tdo_cimacc.Micro_engine.default_config with
      Tdo_cimacc.Micro_engine.xbar =
        { Tdo_pcm.Crossbar.default_config with Tdo_pcm.Crossbar.rows = xbar; cols = xbar };
      tiles;
    }
  in
  let platform_config = { Platform.default_config with Platform.engine } in
  let options =
    {
      Flow.enable_loop_tactics = true;
      tactics = { Offload.default_config with Offload.xbar_rows = xbar; xbar_cols = xbar };
    }
  in
  let f, _ = Flow.compile ~options source in
  let args, _ = benchmark.Kernels.make_args ~n ~seed in
  fst (Flow.run ~platform_config f ~args)

let () =
  Printf.printf "=== Design-space exploration: 3mm at n=%d ===\n\n" n;
  Printf.printf "host baseline: %s, %s (EDP %sJs)\n\n"
    (Pretty.si_float host.Flow.energy_j ^ "J")
    (Pretty.si_float host.Flow.time_s ^ "s")
    (Pretty.si_float host.Flow.edp_js);
  let rows = ref [] in
  List.iter
    (fun xbar ->
      List.iter
        (fun tiles ->
          let m = measure ~xbar ~tiles in
          rows :=
            [
              Printf.sprintf "%dx%d" xbar xbar;
              string_of_int tiles;
              Pretty.si_float m.Flow.energy_j ^ "J";
              Pretty.si_float m.Flow.time_s ^ "s";
              Pretty.fixed ~digits:1 (host.Flow.energy_j /. m.Flow.energy_j) ^ "x";
              Pretty.fixed ~digits:1 (host.Flow.edp_js /. m.Flow.edp_js) ^ "x";
              string_of_int m.Flow.launches;
            ]
            :: !rows)
        [ 1; 2; 4 ])
    [ 64; 128; 256 ];
  Pretty.print
    ~columns:
      [
        Pretty.column ~align:Pretty.Right "crossbar";
        Pretty.column ~align:Pretty.Right "tiles";
        Pretty.column ~align:Pretty.Right "energy";
        Pretty.column ~align:Pretty.Right "time";
        Pretty.column ~align:Pretty.Right "E gain";
        Pretty.column ~align:Pretty.Right "EDP gain";
        Pretty.column ~align:Pretty.Right "launches";
      ]
    ~rows:(List.rev !rows);
  print_newline ();
  print_endline "Reading the table:";
  print_endline "- larger crossbars amortise the per-launch flush/ioctl overhead;";
  print_endline "- a second tile runs 3mm's two independent products in parallel;";
  print_endline "- beyond that, the chain's dependence limits further tile-level gains."
