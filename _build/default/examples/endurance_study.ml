(* Endurance study: the paper's Listing 2 and Fig. 5.

   Two back-to-back GEMMs share their A matrix. The smart mapping fuses
   them into one batched call and pins A in the crossbar (one set of
   writes); the naive mapping streams A and programs B and E instead
   (twice the writes). Eq. 1 turns measured write traffic into expected
   crossbar lifetime.

   Run with: dune exec examples/endurance_study.exe *)

module E = Tdo_cim.Experiments
module Flow = Tdo_cim.Flow
module Offload = Tdo_tactics.Offload

let n = 64

let source =
  Printf.sprintf
    {|
void listing2(float C[%d][%d], float D[%d][%d], float A[%d][%d], float B[%d][%d], float E[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++)
      for (int k = 0; k < %d; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++)
      for (int k = 0; k < %d; k++)
        D[i][j] += A[i][k] * E[k][j];
}
|}
    n n n n n n n n n n n n n n n n

let () =
  print_endline "=== Endurance-aware fusion (Listing 2) and lifetime (Fig. 5) ===";
  Printf.printf "\nWorkload: two %dx%d GEMMs sharing matrix A.\n\n" n n;

  (* show what fusion generates *)
  let fused, report = Flow.compile ~options:Flow.o3_loop_tactics source in
  (match report with
  | Some r ->
      Printf.printf "Loop Tactics fused %d kernels into %d batched call(s).\n"
        r.Offload.kernels_offloaded r.Offload.fused_groups
  | None -> ());
  print_endline "\nGenerated IR (one polly_cimBlasGemmBatched instead of two SGemm calls):";
  Format.printf "%a@.@." Tdo_ir.Ir.pp_func fused;

  (* the naive mapping for contrast *)
  let naive_options =
    {
      Flow.enable_loop_tactics = true;
      tactics = { Offload.default_config with Offload.naive_pin = true };
    }
  in
  let naive, _ = Flow.compile ~options:naive_options source in
  print_endline "Naive mapping for comparison (streams A, programs B and E):";
  Format.printf "%a@.@." Tdo_ir.Ir.pp_func naive;

  (* Fig. 5 *)
  E.print_fig5 ~n ()
