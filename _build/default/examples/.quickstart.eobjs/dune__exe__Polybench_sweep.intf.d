examples/polybench_sweep.mli:
