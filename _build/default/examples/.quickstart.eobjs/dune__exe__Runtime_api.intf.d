examples/runtime_api.mli:
