examples/quickstart.mli:
