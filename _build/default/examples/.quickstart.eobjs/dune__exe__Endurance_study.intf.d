examples/endurance_study.mli:
