examples/design_space.ml: List Printf Result Tdo_cim Tdo_cimacc Tdo_pcm Tdo_polybench Tdo_runtime Tdo_tactics Tdo_util
