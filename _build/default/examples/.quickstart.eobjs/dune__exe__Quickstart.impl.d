examples/quickstart.ml: Array Format Int32 Printf Tdo_cim Tdo_ir Tdo_lang Tdo_linalg Tdo_tactics Tdo_util
