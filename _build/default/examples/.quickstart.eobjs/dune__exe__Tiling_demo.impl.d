examples/tiling_demo.ml: Array Format Int32 Printf Tdo_cim Tdo_cimacc Tdo_ir Tdo_lang Tdo_linalg Tdo_pcm Tdo_runtime Tdo_tactics Tdo_util
