examples/endurance_study.ml: Format Printf Tdo_cim Tdo_ir Tdo_tactics
