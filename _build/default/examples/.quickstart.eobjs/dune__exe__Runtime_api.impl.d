examples/runtime_api.ml: List Printf Tdo_cimacc Tdo_linalg Tdo_runtime Tdo_util
