examples/polybench_sweep.ml: List Printf Tdo_cim Tdo_polybench
