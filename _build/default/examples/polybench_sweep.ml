(* PolyBench sweep: the paper's Fig. 6 across problem sizes.

   Runs the seven kernels of the evaluation (2mm, 3mm, gemm, conv,
   gesummv, bicg, mvt) host-only and with TDO-CIM, at three dataset
   sizes, and prints the energy/EDP tables. Shows the crossover the
   paper describes: GEMM-like kernels win by growing factors as the
   problem grows; GEMV-like kernels stay below 1x because their compute
   intensity (MACs per crossbar write) is ~1.

   Run with: dune exec examples/polybench_sweep.exe *)

module E = Tdo_cim.Experiments
module Dataset = Tdo_polybench.Dataset

let () =
  print_endline "=== PolyBench/C sweep (Fig. 6) ===";
  List.iter
    (fun dataset ->
      Printf.printf "\n--- dataset %s (n = %d) ---\n" (Dataset.to_string dataset)
        (Dataset.n dataset);
      E.print_fig6 ~dataset ())
    [ Dataset.Small; Dataset.Medium; Dataset.Large ]
