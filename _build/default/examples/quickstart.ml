(* Quickstart: the paper's Listing 1, end to end.

   Compile a plain C-style GEMM twice — once for the host, once with
   Loop Tactics enabled — inspect the generated runtime calls, execute
   both on the emulated Arm-A7 + CIM platform, and compare results,
   run time and energy.

   Run with: dune exec examples/quickstart.exe *)

module Flow = Tdo_cim.Flow
module Interp = Tdo_lang.Interp
module Mat = Tdo_linalg.Mat
module Prng = Tdo_util.Prng

let n = 48

let source =
  Printf.sprintf
    {|
void gemm(float alpha, float beta, float C[%d][%d], float A[%d][%d], float B[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      C[i][j] *= beta;
      for (int k = 0; k < %d; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
|}
    n n n n n n n n n

let fresh_args seed =
  let g = Prng.create ~seed in
  let random () =
    let arr = Interp.make_array ~dims:[ n; n ] in
    Array.iteri
      (fun i _ ->
        let v = Prng.float_range g ~lo:(-1.0) ~hi:1.0 in
        arr.Interp.data.(i) <- Int32.float_of_bits (Int32.bits_of_float v))
      arr.Interp.data;
    arr
  in
  let c = random () in
  ( [
      ("alpha", Interp.Vfloat 1.5);
      ("beta", Interp.Vfloat 1.2);
      ("C", Interp.Varray c);
      ("A", Interp.Varray (random ()));
      ("B", Interp.Varray (random ()));
    ],
    c )

let () =
  print_endline "=== TDO-CIM quickstart: transparent GEMM offload (Listing 1) ===";
  Printf.printf "\nInput: a %dx%dx%d GEMM in plain sequential C.\n" n n n;

  (* 1. what the compiler generates *)
  let cim_func, report = Flow.compile ~options:Flow.o3_loop_tactics source in
  (match report with
  | Some r ->
      Printf.printf "\nLoop Tactics: %d kernel(s) detected, %d offloaded.\n"
        r.Tdo_tactics.Offload.kernels_detected r.Tdo_tactics.Offload.kernels_offloaded
  | None -> print_endline "\nLoop Tactics did not run (not a SCoP).");
  print_endline "\nGenerated IR (the paper's Listing 1 shape):";
  Format.printf "%a@." Tdo_ir.Ir.pp_func cim_func;

  (* 2. run both versions *)
  let args_host, c_host = fresh_args 42 in
  let host, _ = Flow.run_source ~options:Flow.o3 source ~args:args_host in
  let args_cim, c_cim = fresh_args 42 in
  let cim, _ = Flow.run_source ~options:Flow.o3_loop_tactics source ~args:args_cim in

  (* 3. compare *)
  let err = Mat.max_abs_diff (Interp.mat_of_arr c_host) (Interp.mat_of_arr c_cim) in
  print_endline "=== results ===";
  Printf.printf "max |host - cim| on C:   %.4f (8-bit crossbar quantisation)\n" err;
  Printf.printf "host:     %9d instructions, %8.3f ms, %8.2f uJ\n" host.Flow.roi_instructions
    (host.Flow.time_s *. 1e3) (host.Flow.energy_j *. 1e6);
  Printf.printf "host+CIM: %9d instructions, %8.3f ms, %8.2f uJ\n" cim.Flow.roi_instructions
    (cim.Flow.time_s *. 1e3) (cim.Flow.energy_j *. 1e6);
  Printf.printf "energy improvement: %.1fx   EDP improvement: %.1fx   speedup: %.1fx\n"
    (host.Flow.energy_j /. cim.Flow.energy_j)
    (host.Flow.edp_js /. cim.Flow.edp_js)
    (host.Flow.time_s /. cim.Flow.time_s)
