(* Tiling demo: the paper's Listing 3.

   A GEMM whose operands exceed the crossbar cannot be offloaded as
   one call. The revisited tiling transformation splits the pinned
   dimension and the reduction into crossbar-sized tiles, peeling the
   first k-tile so beta is applied exactly once, and reuses each A tile
   across the whole streamed dimension (the j point loops of Listing 3
   are subsumed by the engine's column streaming).

   To make the tiling visible at a friendly size, this demo shrinks the
   crossbar to 32x32 and compiles a 96x96x96 GEMM against it.

   Run with: dune exec examples/tiling_demo.exe *)

module Flow = Tdo_cim.Flow
module Offload = Tdo_tactics.Offload
module Platform = Tdo_runtime.Platform
module Interp = Tdo_lang.Interp
module Mat = Tdo_linalg.Mat
module Prng = Tdo_util.Prng

let n = 96
let xbar = 32

let source =
  Printf.sprintf
    {|
void big_gemm(float C[%d][%d], float A[%d][%d], float B[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      C[i][j] = 0.0;
      for (int k = 0; k < %d; k++)
        C[i][j] += A[i][k] * B[k][j];
    }
}
|}
    n n n n n n n n n

let options =
  {
    Flow.enable_loop_tactics = true;
    tactics = { Offload.default_config with Offload.xbar_rows = xbar; xbar_cols = xbar };
  }

let platform_config =
  let engine =
    {
      Tdo_cimacc.Micro_engine.default_config with
      Tdo_cimacc.Micro_engine.xbar =
        { Tdo_pcm.Crossbar.default_config with Tdo_pcm.Crossbar.rows = xbar; cols = xbar };
    }
  in
  { Platform.default_config with Platform.engine }

let fresh_args seed =
  let g = Prng.create ~seed in
  let random () =
    let arr = Interp.make_array ~dims:[ n; n ] in
    Array.iteri
      (fun i _ ->
        let v = Prng.float_range g ~lo:(-1.0) ~hi:1.0 in
        arr.Interp.data.(i) <- Int32.float_of_bits (Int32.bits_of_float v))
      arr.Interp.data;
    arr
  in
  let c = Interp.make_array ~dims:[ n; n ] in
  ( [
      ("C", Interp.Varray c);
      ("A", Interp.Varray (random ()));
      ("B", Interp.Varray (random ()));
    ],
    c )

let () =
  Printf.printf "=== Revisited tiling (Listing 3): %dx%dx%d GEMM on a %dx%d crossbar ===\n\n" n
    n n xbar xbar;
  let f, report = Flow.compile ~options source in
  (match report with
  | Some r ->
      Printf.printf "Loop Tactics: %d kernel detected, %d tiled for the crossbar.\n"
        r.Offload.kernels_detected r.Offload.tiled_kernels
  | None -> ());
  print_endline "\nGenerated IR (tile loops with the first k-tile peeled for beta):";
  Format.printf "%a@.@." Tdo_ir.Ir.pp_func f;

  let args_cim, c_cim = fresh_args 7 in
  let cim, _ = Flow.run ~platform_config f ~args:args_cim in
  let args_host, c_host = fresh_args 7 in
  let host_f, _ = Flow.compile ~options:Flow.o3 source in
  let host, _ = Flow.run ~platform_config host_f ~args:args_host in
  Printf.printf "tile launches: %d\n" cim.Flow.launches;
  Printf.printf "max |host - cim| on C: %.4f\n"
    (Mat.max_abs_diff (Interp.mat_of_arr c_host) (Interp.mat_of_arr c_cim));
  Printf.printf "energy: host %.2f uJ vs host+CIM %.2f uJ (%.1fx)\n" (host.Flow.energy_j *. 1e6)
    (cim.Flow.energy_j *. 1e6)
    (host.Flow.energy_j /. cim.Flow.energy_j);
  Printf.printf "crossbar writes: %d bytes (= every A tile programmed exactly once)\n"
    cim.Flow.cim_write_bytes
