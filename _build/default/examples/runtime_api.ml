(* Runtime API: using the CIM runtime library directly, cuBLAS-style.

   The paper's runtime "has been designed to be used directly by the
   application programmer, or an optimizer". This example skips the
   compiler entirely: it allocates device buffers, copies matrices in,
   launches SGEMM / batched GEMM / SGEMV by hand, and reads the
   results back — watching the device state along the way.

   Run with: dune exec examples/runtime_api.exe *)

module Platform = Tdo_runtime.Platform
module Api = Tdo_runtime.Api
module Driver = Tdo_runtime.Driver
module Regs = Tdo_cimacc.Context_regs
module Mat = Tdo_linalg.Mat
module Blas_ref = Tdo_linalg.Blas_ref
module Prng = Tdo_util.Prng

let n = 32

let () =
  print_endline "=== CIM runtime library, driven by hand (no compiler) ===";
  let platform = Platform.create () in
  let api = Api.init platform in
  let g = Prng.create ~seed:11 in

  (* -- allocate device buffers (CMA-backed, physically contiguous) -- *)
  let alloc what bytes =
    match Api.malloc api ~bytes with
    | Ok buf -> buf
    | Error e -> failwith (what ^ ": " ^ e)
  in
  let bytes = 4 * n * n in
  let buf_a = alloc "A" bytes and buf_b = alloc "B" bytes and buf_c = alloc "C" bytes in
  Printf.printf "\ncim_malloc: three %d-byte buffers from the CMA region (%.1f MB free)\n" bytes
    (float_of_int (Tdo_runtime.Cma.free_bytes platform.Platform.cma) /. 1024. /. 1024.);

  (* -- stage data -- *)
  let a = Mat.random g ~rows:n ~cols:n ~lo:(-1.0) ~hi:1.0 in
  let b = Mat.random g ~rows:n ~cols:n ~lo:(-1.0) ~hi:1.0 in
  let va = Api.view ~ld:n buf_a and vb = Api.view ~ld:n buf_b and vc = Api.view ~ld:n buf_c in
  Api.host_to_dev api ~src:a ~dst:va;
  Api.host_to_dev api ~src:b ~dst:vb;

  (* -- SGEMM -- *)
  (match Api.sgemm api ~m:n ~n ~k:n ~alpha:1.0 ~a:va ~b:vb ~beta:0.0 ~c:vc () with
  | Ok () -> ()
  | Error e -> failwith ("sgemm: " ^ e));
  let result = Api.dev_to_host api ~src:vc ~rows:n ~cols:n in
  let expected = Mat.create ~rows:n ~cols:n in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b ~c:expected ();
  Printf.printf "cim_blas_sgemm:   C = A*B          max error %.4f\n"
    (Mat.max_abs_diff expected result);

  (* -- a second call with the same A reuses the pinned operand -- *)
  (match Api.sgemm api ~m:n ~n ~k:n ~alpha:1.0 ~a:va ~b:vb ~beta:0.0 ~c:vc () with
  | Ok () -> ()
  | Error e -> failwith ("sgemm 2: " ^ e));
  let engine = Tdo_cimacc.Accel.engine platform.Platform.accel in
  Printf.printf "second sgemm with unchanged A: %d crossbar programming(s) skipped\n"
    (Tdo_cimacc.Micro_engine.counters engine).Tdo_cimacc.Micro_engine.programming_skipped;

  (* -- batched GEMM (Listing 2's fused form) -- *)
  let buf_e = alloc "E" bytes and buf_d = alloc "D" bytes in
  let e = Mat.random g ~rows:n ~cols:n ~lo:(-1.0) ~hi:1.0 in
  Api.host_to_dev api ~src:e ~dst:(Api.view ~ld:n buf_e);
  (match
     Api.gemm_batched api ~pin:Regs.Pin_a ~m:n ~n ~k:n ~alpha:1.0 ~beta:0.0
       ~batch:
         [ (va, vb, vc); (va, Api.view ~ld:n buf_e, Api.view ~ld:n buf_d) ]
       ()
   with
  | Ok () -> ()
  | Error err -> failwith ("gemm_batched: " ^ err));
  let result_d = Api.dev_to_host api ~src:(Api.view ~ld:n buf_d) ~rows:n ~cols:n in
  let expected_d = Mat.create ~rows:n ~cols:n in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b:e ~c:expected_d ();
  Printf.printf "cim_gemm_batched: {C=A*B, D=A*E}   max error %.4f (A written once)\n"
    (Mat.max_abs_diff expected_d result_d);

  (* -- SGEMV -- *)
  let buf_x = alloc "x" (4 * n) and buf_y = alloc "y" (4 * n) in
  let x = Mat.random g ~rows:n ~cols:1 ~lo:(-1.0) ~hi:1.0 in
  Api.host_to_dev api ~src:x ~dst:(Api.view ~ld:1 buf_x);
  (match
     Api.sgemv api ~m:n ~k:n ~alpha:1.0 ~a:va ~x:(Api.view ~ld:1 buf_x) ~beta:0.0
       ~y:(Api.view ~ld:1 buf_y) ()
   with
  | Ok () -> ()
  | Error err -> failwith ("sgemv: " ^ err));
  let result_y = Api.dev_to_host api ~src:(Api.view ~ld:1 buf_y) ~rows:n ~cols:1 in
  let expected_y = Mat.create ~rows:n ~cols:1 in
  Blas_ref.gemm ~alpha:1.0 ~beta:0.0 ~a ~b:x ~c:expected_y ();
  Printf.printf "cim_blas_sgemv:   y = A*x          max error %.4f\n"
    (Mat.max_abs_diff expected_y result_y);

  (* -- cost of it all -- *)
  let d = Api.driver api in
  let c = Api.counters api in
  Printf.printf "\ndriver: %d ioctls, %d register writes, %d cache flushes, %d translations\n"
    (Driver.ioctls d) (Driver.reg_writes d) (Driver.cache_flushes d) (Driver.translations d);
  Printf.printf "api:    %d launches, %d host->dev bytes, %d dev->host bytes\n" c.Api.launches
    c.Api.host_to_dev_bytes c.Api.dev_to_host_bytes;
  List.iter (fun b -> Api.free api b) [ buf_a; buf_b; buf_c; buf_d; buf_e; buf_x; buf_y ];
  Printf.printf "freed everything: %d bytes still allocated in the CMA region\n"
    (Tdo_runtime.Cma.allocated_bytes platform.Platform.cma)
