(** System lifetime model (paper Eq. 1, Fig. 5).

    [SystemLifetime = CellEndurance * S / B] where [S] is the crossbar
    capacity in bytes and [B] the write traffic in bytes per second,
    assuming writes are spread uniformly over the array (the paper's
    stated assumption). *)

val lifetime_seconds :
  cell_endurance:float -> crossbar_bytes:int -> write_bytes_per_second:float -> float
(** Raises [Invalid_argument] on non-positive traffic, capacity or
    endurance. *)

val lifetime_years :
  cell_endurance:float -> crossbar_bytes:int -> write_bytes_per_second:float -> float

val write_traffic_bytes_per_second : bytes_written:int -> elapsed_seconds:float -> float
(** [B] from a measured execution. Raises [Invalid_argument] when
    [elapsed_seconds <= 0]. *)

val seconds_per_year : float
