let seconds_per_year = 365.25 *. 24.0 *. 3600.0

let lifetime_seconds ~cell_endurance ~crossbar_bytes ~write_bytes_per_second =
  if cell_endurance <= 0.0 then invalid_arg "Endurance: endurance must be positive";
  if crossbar_bytes <= 0 then invalid_arg "Endurance: capacity must be positive";
  if write_bytes_per_second <= 0.0 then invalid_arg "Endurance: traffic must be positive";
  cell_endurance *. float_of_int crossbar_bytes /. write_bytes_per_second

let lifetime_years ~cell_endurance ~crossbar_bytes ~write_bytes_per_second =
  lifetime_seconds ~cell_endurance ~crossbar_bytes ~write_bytes_per_second /. seconds_per_year

let write_traffic_bytes_per_second ~bytes_written ~elapsed_seconds =
  if elapsed_seconds <= 0.0 then invalid_arg "Endurance: elapsed time must be positive";
  float_of_int bytes_written /. elapsed_seconds
