(** Shared analog-to-digital converter with sample-and-hold front end
    (paper Section II-B, ISAAC-style sharing).

    The columns of the crossbar are multiplexed onto a small number of
    ADCs through sample-and-hold circuits; the model tracks conversion
    and sampling counts so the energy model can charge the mixed-signal
    budget of Table I, and quantises the analog column current to the
    converter's resolution. *)

type config = {
  bits : int;  (** converter resolution *)
  columns_per_adc : int;  (** sharing factor via S&H *)
}

val default_config : config
(** 8-bit converters, 32 columns per ADC. *)

type t

val create : ?config:config -> unit -> t
val config : t -> config

val convert : t -> full_scale:float -> float -> int
(** [convert t ~full_scale current] samples the analog value (one S&H
    event) and converts it (one ADC event) to a signed integer code,
    quantising to [bits] resolution with [full_scale] mapped to the
    largest code. [full_scale] must be positive. *)

val conversions : t -> int
(** Total ADC conversion events. *)

val samples : t -> int
(** Total S&H sampling events. *)

val adc_count_for_columns : t -> int -> int
(** Number of physical ADC instances needed to serve [n] columns. *)
