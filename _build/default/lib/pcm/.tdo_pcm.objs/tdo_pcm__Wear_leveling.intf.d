lib/pcm/wear_leveling.mli:
