lib/pcm/endurance.mli:
