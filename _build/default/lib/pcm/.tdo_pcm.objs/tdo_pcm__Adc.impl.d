lib/pcm/adc.ml: Float
