lib/pcm/cell.mli:
