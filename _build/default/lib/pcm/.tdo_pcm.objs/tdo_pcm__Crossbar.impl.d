lib/pcm/crossbar.ml: Adc Array Cell Float Printf Tdo_linalg Tdo_util
