lib/pcm/cell.ml: Printf
