lib/pcm/endurance.ml:
