lib/pcm/wear_leveling.ml: Array Printf
