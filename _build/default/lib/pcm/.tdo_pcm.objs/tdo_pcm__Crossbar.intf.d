lib/pcm/crossbar.mli: Adc Cell
