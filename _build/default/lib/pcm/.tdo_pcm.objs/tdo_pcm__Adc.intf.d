lib/pcm/adc.mli:
