open Ast

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type arr = { dims : int list; data : float array }
type value = Vint of int | Vfloat of float | Varray of arr

let f32 v = Int32.float_of_bits (Int32.bits_of_float v)

let make_array ~dims =
  if dims = [] || List.exists (fun d -> d <= 0) dims then
    fail "make_array: invalid dimensions";
  { dims; data = Array.make (List.fold_left ( * ) 1 dims) 0.0 }

let flat_index arr indices =
  if List.length indices <> List.length arr.dims then fail "rank mismatch";
  List.fold_left2
    (fun acc idx dim ->
      if idx < 0 || idx >= dim then fail "index %d out of bound %d" idx dim;
      (acc * dim) + idx)
    0 indices arr.dims

let arr_get arr indices = arr.data.(flat_index arr indices)
let arr_set arr indices v = arr.data.(flat_index arr indices) <- f32 v

let arr_of_mat m =
  let module Mat = Tdo_linalg.Mat in
  let arr = make_array ~dims:[ Mat.rows m; Mat.cols m ] in
  Mat.iteri ~f:(fun i j v -> arr_set arr [ i; j ] v) m;
  arr

let mat_of_arr arr =
  let module Mat = Tdo_linalg.Mat in
  match arr.dims with
  | [ rows; cols ] -> Mat.init ~rows ~cols ~f:(fun i j -> arr_get arr [ i; j ])
  | _ -> fail "mat_of_arr: not a 2-D array"

(* Environment: association list, innermost first; values are boxed so
   scalar assignment mutates the binding. *)
type slot = Sint of int ref | Sfloat of float ref | Sarr of arr

let lookup env name =
  match List.assoc_opt name env with
  | Some s -> s
  | None -> fail "unbound identifier '%s'" name

let rec eval env = function
  | Int_lit n -> Vint n
  | Float_lit f -> Vfloat f
  | Var name -> (
      match lookup env name with
      | Sint r -> Vint !r
      | Sfloat r -> Vfloat !r
      | Sarr _ -> fail "array '%s' used as a scalar" name)
  | Index (name, indices) -> (
      match lookup env name with
      | Sarr arr -> Vfloat (arr_get arr (List.map (eval_int env) indices))
      | Sint _ | Sfloat _ -> fail "scalar '%s' indexed" name)
  | Binop (op, a, b) -> (
      match (eval env a, eval env b) with
      | Vint x, Vint y -> (
          match op with
          | Add -> Vint (x + y)
          | Sub -> Vint (x - y)
          | Mul -> Vint (x * y)
          | Div ->
              if y = 0 then fail "integer division by zero";
              Vint (x / y))
      | va, vb ->
          let x = as_float va and y = as_float vb in
          Vfloat
            (match op with Add -> x +. y | Sub -> x -. y | Mul -> x *. y | Div -> x /. y))
  | Neg e -> (
      match eval env e with Vint n -> Vint (-n) | Vfloat f -> Vfloat (-.f) | Varray _ -> fail "negating an array")

and as_float = function
  | Vint n -> float_of_int n
  | Vfloat f -> f
  | Varray _ -> fail "array used as a scalar"

and eval_int env e =
  match eval env e with
  | Vint n -> n
  | Vfloat _ -> fail "expected an integer expression"
  | Varray _ -> fail "expected an integer expression"

let apply_op op old rhs =
  match op with
  | Set -> rhs
  | Add_assign -> old +. rhs
  | Sub_assign -> old -. rhs
  | Mul_assign -> old *. rhs

let rec exec_stmt env = function
  | For { var; lo; hi; step; body } ->
      let lo = eval_int env lo and hi = eval_int env hi in
      let counter = ref lo in
      let env = (var, Sint counter) :: env in
      while !counter < hi do
        exec_body env body;
        counter := !counter + step
      done
  | Assign { lhs; op; rhs } -> (
      match (lookup env lhs.base, lhs.indices) with
      | Sarr arr, indices ->
          let indices = List.map (eval_int env) indices in
          let rhs = as_float (eval env rhs) in
          let old = arr_get arr indices in
          arr_set arr indices (apply_op op old rhs)
      | Sfloat r, [] ->
          let rhs = as_float (eval env rhs) in
          r := apply_op op !r rhs
      | Sint r, [] -> (
          match eval env rhs with
          | Vint v -> (
              match op with
              | Set -> r := v
              | Add_assign -> r := !r + v
              | Sub_assign -> r := !r - v
              | Mul_assign -> r := !r * v)
          | Vfloat _ | Varray _ -> fail "integer '%s' assigned a non-integer" lhs.base)
      | (Sint _ | Sfloat _), _ :: _ -> fail "scalar '%s' indexed" lhs.base)
  | Decl_scalar _ | Decl_array _ ->
      (* handled by exec_body so the binding covers the remaining
         statements of the enclosing body *)
      assert false
  | Block body -> exec_body env body

and exec_body env = function
  | [] -> ()
  | Decl_scalar { name; typ; init } :: rest ->
      let slot =
        match typ with
        | Tint -> Sint (ref (match init with Some e -> eval_int env e | None -> 0))
        | Tfloat ->
            Sfloat (ref (match init with Some e -> as_float (eval env e) | None -> 0.0))
        | Tvoid -> fail "void declaration"
      in
      exec_body ((name, slot) :: env) rest
  | Decl_array { name; dims } :: rest ->
      exec_body ((name, Sarr (make_array ~dims)) :: env) rest
  | stmt :: rest ->
      exec_stmt env stmt;
      exec_body env rest

let run f ~args =
  let bind_param p =
    match List.assoc_opt p.pname args with
    | None -> fail "missing argument '%s'" p.pname
    | Some value -> (
        match (p.dims, value) with
        | [], Vint n ->
            if p.ptyp <> Tint then fail "argument '%s' should be %s" p.pname "int";
            (p.pname, Sint (ref n))
        | [], Vfloat v ->
            if p.ptyp <> Tfloat then fail "argument '%s' should be float" p.pname;
            (p.pname, Sfloat (ref v))
        | [], Varray _ -> fail "argument '%s' is a scalar" p.pname
        | dims, Varray arr ->
            if arr.dims <> dims then fail "argument '%s' has mismatched dimensions" p.pname;
            (p.pname, Sarr arr)
        | _ :: _, (Vint _ | Vfloat _) -> fail "argument '%s' is an array" p.pname)
  in
  let env = List.map bind_param f.params in
  exec_body env f.body
