(** Recursive-descent parser for the mini-C front end. *)

exception Parse_error of { line : int; message : string }

val parse_program : string -> Ast.program
(** Parse a full translation unit. Raises {!Parse_error} or
    {!Lexer.Lex_error}. *)

val parse_func : string -> Ast.func
(** Parse a single function definition (convenience for tests and
    kernels). Raises if the source does not contain exactly one
    function. *)
