(** Static checks over the mini-C AST: scoping, array ranks, index and
    bound types, assignment type agreement. *)

exception Type_error of string

val check_func : Ast.func -> unit
(** Raises {!Type_error} with a readable message on the first
    violation. *)

val check_program : Ast.program -> unit
