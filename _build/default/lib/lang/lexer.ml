type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_VOID
  | KW_FLOAT
  | KW_INT
  | KW_FOR
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | PLUS_PLUS
  | LT
  | EOF

exception Lex_error of { line : int; message : string }

let token_to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KW_VOID -> "void"
  | KW_FLOAT -> "float"
  | KW_INT -> "int"
  | KW_FOR -> "for"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*="
  | PLUS_PLUS -> "++"
  | LT -> "<"
  | EOF -> "<eof>"

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let pos = ref 0 in
  let fail message = raise (Lex_error { line = !line; message }) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let peek2 () = if !pos + 1 < n then Some src.[!pos + 1] else None in
  let advance () =
    if !pos < n && src.[!pos] = '\n' then incr line;
    incr pos
  in
  let tokens = ref [] in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let rec skip_block_comment () =
    match (peek (), peek2 ()) with
    | Some '*', Some '/' ->
        advance ();
        advance ()
    | Some _, _ ->
        advance ();
        skip_block_comment ()
    | None, _ -> fail "unterminated comment"
  in
  let lex_number () =
    let start = !pos in
    while (match peek () with Some c -> is_digit c | None -> false) do
      advance ()
    done;
    let is_float =
      match peek () with
      | Some '.' ->
          advance ();
          while (match peek () with Some c -> is_digit c | None -> false) do
            advance ()
          done;
          true
      | Some _ | None -> false
    in
    let is_float =
      match peek () with
      | Some ('e' | 'E') ->
          advance ();
          (match peek () with Some ('+' | '-') -> advance () | Some _ | None -> ());
          while (match peek () with Some c -> is_digit c | None -> false) do
            advance ()
          done;
          true
      | Some _ | None -> is_float
    in
    let text = String.sub src start (!pos - start) in
    (* trailing float suffix as in 0.5f *)
    let text, is_float =
      match peek () with
      | Some ('f' | 'F') ->
          advance ();
          (text, true)
      | Some _ | None -> (text, is_float)
    in
    if is_float then emit (FLOAT (float_of_string text)) else emit (INT (int_of_string text))
  in
  let lex_ident () =
    let start = !pos in
    while (match peek () with Some c -> is_ident_char c | None -> false) do
      advance ()
    done;
    match String.sub src start (!pos - start) with
    | "void" -> emit KW_VOID
    | "float" -> emit KW_FLOAT
    | "int" -> emit KW_INT
    | "for" -> emit KW_FOR
    | ident -> emit (IDENT ident)
  in
  let rec loop () =
    match peek () with
    | None -> ()
    | Some c ->
        (match c with
        | ' ' | '\t' | '\r' | '\n' -> advance ()
        | '/' -> (
            match peek2 () with
            | Some '/' ->
                while (match peek () with Some c -> c <> '\n' | None -> false) do
                  advance ()
                done
            | Some '*' ->
                advance ();
                advance ();
                skip_block_comment ()
            | Some _ | None ->
                advance ();
                emit SLASH)
        | '0' .. '9' -> lex_number ()
        | c when is_ident_start c -> lex_ident ()
        | '(' -> advance (); emit LPAREN
        | ')' -> advance (); emit RPAREN
        | '{' -> advance (); emit LBRACE
        | '}' -> advance (); emit RBRACE
        | '[' -> advance (); emit LBRACKET
        | ']' -> advance (); emit RBRACKET
        | ';' -> advance (); emit SEMI
        | ',' -> advance (); emit COMMA
        | '<' -> advance (); emit LT
        | '+' -> (
            advance ();
            match peek () with
            | Some '=' -> advance (); emit PLUS_ASSIGN
            | Some '+' -> advance (); emit PLUS_PLUS
            | Some _ | None -> emit PLUS)
        | '-' -> (
            advance ();
            match peek () with
            | Some '=' -> advance (); emit MINUS_ASSIGN
            | Some _ | None -> emit MINUS)
        | '*' -> (
            advance ();
            match peek () with
            | Some '=' -> advance (); emit STAR_ASSIGN
            | Some _ | None -> emit STAR)
        | '=' -> advance (); emit ASSIGN
        | c -> fail (Printf.sprintf "unexpected character %C" c));
        loop ()
  in
  loop ();
  emit EOF;
  List.rev !tokens
