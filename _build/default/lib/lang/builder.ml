open Ast

let int n = Int_lit n
let float f = Float_lit f
let var name = Var name
let idx base indices = Index (base, indices)
let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let neg e = Neg e

let make_assign op base indices rhs = Assign { lhs = { base; indices }; op; rhs }
let assign base indices rhs = make_assign Set base indices rhs
let add_assign base indices rhs = make_assign Add_assign base indices rhs
let sub_assign base indices rhs = make_assign Sub_assign base indices rhs
let mul_assign base indices rhs = make_assign Mul_assign base indices rhs

let for_ name ?(lo = Int_lit 0) ?(step = 1) hi body = For { var = name; lo; hi; step; body }

let local_scalar ?init typ name = Decl_scalar { name; typ; init }
let local_array name dims = Decl_array { name; dims }

let scalar ptyp pname = { pname; ptyp; dims = [] }
let array pname dims = { pname; ptyp = Tfloat; dims }

let func ?(ret = Tvoid) fname params body =
  let f = { fname; ret; params; body } in
  Typecheck.check_func f;
  f
