open Ast

exception Parse_error of { line : int; message : string }

type state = { mutable tokens : (Lexer.token * int) list }

let fail_at line message = raise (Parse_error { line; message })

let peek st =
  match st.tokens with
  | (tok, line) :: _ -> (tok, line)
  | [] -> (Lexer.EOF, 0)

let advance st = match st.tokens with _ :: rest -> st.tokens <- rest | [] -> ()

let expect st expected =
  let tok, line = peek st in
  if tok = expected then advance st
  else
    fail_at line
      (Printf.sprintf "expected '%s' but found '%s'" (Lexer.token_to_string expected)
         (Lexer.token_to_string tok))

let expect_ident st =
  match peek st with
  | Lexer.IDENT name, _ ->
      advance st;
      name
  | tok, line ->
      fail_at line (Printf.sprintf "expected identifier, found '%s'" (Lexer.token_to_string tok))

let parse_typ st =
  match peek st with
  | Lexer.KW_VOID, _ -> advance st; Tvoid
  | Lexer.KW_FLOAT, _ -> advance st; Tfloat
  | Lexer.KW_INT, _ -> advance st; Tint
  | tok, line ->
      fail_at line (Printf.sprintf "expected a type, found '%s'" (Lexer.token_to_string tok))

(* expressions: precedence climbing over + - and * / with unary minus *)
let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PLUS, _ ->
        advance st;
        lhs := Binop (Add, !lhs, parse_multiplicative st)
    | Lexer.MINUS, _ ->
        advance st;
        lhs := Binop (Sub, !lhs, parse_multiplicative st)
    | _ -> continue := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.STAR, _ ->
        advance st;
        lhs := Binop (Mul, !lhs, parse_unary st)
    | Lexer.SLASH, _ ->
        advance st;
        lhs := Binop (Div, !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Lexer.MINUS, _ ->
      advance st;
      Neg (parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.INT n, _ ->
      advance st;
      Int_lit n
  | Lexer.FLOAT f, _ ->
      advance st;
      Float_lit f
  | Lexer.LPAREN, _ ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.IDENT name, _ ->
      advance st;
      let indices = parse_indices st in
      if indices = [] then Var name else Index (name, indices)
  | tok, line ->
      fail_at line
        (Printf.sprintf "expected an expression, found '%s'" (Lexer.token_to_string tok))

and parse_indices st =
  match peek st with
  | Lexer.LBRACKET, _ ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RBRACKET;
      e :: parse_indices st
  | _ -> []

let parse_const_dims st =
  let rec loop acc =
    match peek st with
    | Lexer.LBRACKET, line -> (
        advance st;
        match peek st with
        | Lexer.INT d, _ ->
            advance st;
            expect st Lexer.RBRACKET;
            loop (d :: acc)
        | tok, _ ->
            fail_at line
              (Printf.sprintf "array dimensions must be integer literals, found '%s'"
                 (Lexer.token_to_string tok)))
    | _ -> List.rev acc
  in
  loop []

let rec parse_stmt st =
  match peek st with
  | Lexer.KW_FOR, _ -> parse_for st
  | Lexer.LBRACE, _ -> Block (parse_block st)
  | Lexer.KW_FLOAT, _ | Lexer.KW_INT, _ -> parse_decl st
  | Lexer.IDENT _, _ -> parse_assign st
  | tok, line ->
      fail_at line (Printf.sprintf "expected a statement, found '%s'" (Lexer.token_to_string tok))

and parse_block st =
  expect st Lexer.LBRACE;
  let rec loop acc =
    match peek st with
    | Lexer.RBRACE, _ ->
        advance st;
        List.rev acc
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

and parse_for st =
  expect st Lexer.KW_FOR;
  expect st Lexer.LPAREN;
  expect st Lexer.KW_INT;
  let var = expect_ident st in
  expect st Lexer.ASSIGN;
  let lo = parse_expr st in
  expect st Lexer.SEMI;
  let var2 = expect_ident st in
  let _, line = peek st in
  if var2 <> var then fail_at line "loop condition must test the loop variable";
  expect st Lexer.LT;
  let hi = parse_expr st in
  expect st Lexer.SEMI;
  let var3 = expect_ident st in
  if var3 <> var then fail_at line "loop increment must update the loop variable";
  let step =
    match peek st with
    | Lexer.PLUS_PLUS, _ ->
        advance st;
        1
    | Lexer.PLUS_ASSIGN, line -> (
        advance st;
        match peek st with
        | Lexer.INT n, _ when n > 0 ->
            advance st;
            n
        | _ -> fail_at line "loop step must be a positive integer literal")
    | tok, line ->
        fail_at line
          (Printf.sprintf "expected '++' or '+=', found '%s'" (Lexer.token_to_string tok))
  in
  expect st Lexer.RPAREN;
  let body = match peek st with Lexer.LBRACE, _ -> parse_block st | _ -> [ parse_stmt st ] in
  For { var; lo; hi; step; body }

and parse_decl st =
  let typ = parse_typ st in
  let name = expect_ident st in
  match peek st with
  | Lexer.LBRACKET, line ->
      if typ <> Tfloat then fail_at line "only float arrays are supported";
      let dims = parse_const_dims st in
      expect st Lexer.SEMI;
      Decl_array { name; dims }
  | Lexer.ASSIGN, _ ->
      advance st;
      let init = parse_expr st in
      expect st Lexer.SEMI;
      Decl_scalar { name; typ; init = Some init }
  | _ ->
      expect st Lexer.SEMI;
      Decl_scalar { name; typ; init = None }

and parse_assign st =
  let base = expect_ident st in
  let indices = parse_indices st in
  let op =
    match peek st with
    | Lexer.ASSIGN, _ -> advance st; Set
    | Lexer.PLUS_ASSIGN, _ -> advance st; Add_assign
    | Lexer.MINUS_ASSIGN, _ -> advance st; Sub_assign
    | Lexer.STAR_ASSIGN, _ -> advance st; Mul_assign
    | tok, line ->
        fail_at line
          (Printf.sprintf "expected an assignment operator, found '%s'"
             (Lexer.token_to_string tok))
  in
  let rhs = parse_expr st in
  expect st Lexer.SEMI;
  Assign { lhs = { base; indices }; op; rhs }

let parse_param st =
  let ptyp = parse_typ st in
  let pname = expect_ident st in
  let dims = parse_const_dims st in
  let _, line = peek st in
  if dims <> [] && ptyp <> Tfloat then fail_at line "only float array parameters are supported";
  { pname; ptyp; dims }

let parse_function st =
  let ret = parse_typ st in
  let fname = expect_ident st in
  expect st Lexer.LPAREN;
  let params =
    match peek st with
    | Lexer.RPAREN, _ -> []
    | _ ->
        let rec loop acc =
          let p = parse_param st in
          match peek st with
          | Lexer.COMMA, _ ->
              advance st;
              loop (p :: acc)
          | _ -> List.rev (p :: acc)
        in
        loop []
  in
  expect st Lexer.RPAREN;
  let body = parse_block st in
  { fname; ret; params; body }

let parse_program src =
  let st = { tokens = Lexer.tokenize src } in
  let rec loop acc =
    match peek st with
    | Lexer.EOF, _ -> List.rev acc
    | _ -> loop (parse_function st :: acc)
  in
  loop []

let parse_func src =
  match parse_program src with
  | [ f ] -> f
  | fs ->
      raise
        (Parse_error
           { line = 0; message = Printf.sprintf "expected one function, found %d" (List.length fs) })
