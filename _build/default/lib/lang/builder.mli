(** Combinators for constructing mini-C ASTs programmatically —
    the embedded-DSL alternative to parsing source text. Used by tests
    and by tools that generate kernels (e.g. workload sweeps). *)

open Ast

(** {1 Expressions} *)

val int : int -> expr
val float : float -> expr
val var : string -> expr
val idx : string -> expr list -> expr
val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val neg : expr -> expr

(** {1 Statements} *)

val assign : string -> expr list -> expr -> stmt
(** [assign "C" [i; j] e] is [C\[i\]\[j\] = e]. *)

val add_assign : string -> expr list -> expr -> stmt
val sub_assign : string -> expr list -> expr -> stmt
val mul_assign : string -> expr list -> expr -> stmt

val for_ : string -> ?lo:expr -> ?step:int -> expr -> stmt list -> stmt
(** [for_ "i" hi body] is [for (int i = 0; i < hi; i++) body]. *)

val local_scalar : ?init:expr -> typ -> string -> stmt
val local_array : string -> int list -> stmt

(** {1 Functions} *)

val scalar : typ -> string -> param
val array : string -> int list -> param
val func : ?ret:typ -> string -> param list -> stmt list -> func
(** Builds and type-checks the function; raises
    {!Typecheck.Type_error} on an ill-typed construction. *)
