(** Hand-written lexer for the mini-C front end. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_VOID
  | KW_FLOAT
  | KW_INT
  | KW_FOR
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | PLUS_PLUS
  | LT
  | EOF

exception Lex_error of { line : int; message : string }

val tokenize : string -> (token * int) list
(** Token stream with 1-based line numbers; the last element is
    [(EOF, line)]. Supports [//] and [/* */] comments. Raises
    {!Lex_error} on an unexpected character or unterminated comment. *)

val token_to_string : token -> string
