open Ast

exception Type_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

type binding = Scalar of typ | Array of int list

(* environments are [(string * binding) list], innermost scope first *)

let lookup env name =
  match List.assoc_opt name env with
  | Some b -> b
  | None -> fail "undeclared identifier '%s'" name

let declare env name binding =
  (* shadowing across scopes is resolved by order; same-scope
     redeclaration is caught by the caller keeping scope boundaries *)
  (name, binding) :: env

let rec type_of_expr env = function
  | Int_lit _ -> Tint
  | Float_lit _ -> Tfloat
  | Var name -> (
      match lookup env name with
      | Scalar t -> t
      | Array _ -> fail "array '%s' used without indices" name)
  | Index (name, indices) -> (
      match lookup env name with
      | Scalar _ -> fail "scalar '%s' used with indices" name
      | Array dims ->
          if List.length indices <> List.length dims then
            fail "array '%s' has rank %d but is indexed with %d subscripts" name
              (List.length dims) (List.length indices);
          List.iter
            (fun e ->
              match type_of_expr env e with
              | Tint -> ()
              | Tfloat | Tvoid -> fail "subscript of '%s' is not an integer expression" name)
            indices;
          Tfloat)
  | Binop (op, a, b) -> (
      let ta = type_of_expr env a and tb = type_of_expr env b in
      match (ta, tb) with
      | Tvoid, _ | _, Tvoid -> fail "void value in expression"
      | Tint, Tint -> Tint
      | Tfloat, Tfloat | Tint, Tfloat | Tfloat, Tint ->
          (* C-style promotion *)
          ignore op;
          Tfloat)
  | Neg e -> (
      match type_of_expr env e with
      | Tvoid -> fail "void value in expression"
      | t -> t)

let require_int env what e =
  match type_of_expr env e with
  | Tint -> ()
  | Tfloat | Tvoid -> fail "%s must be an integer expression" what

let rec check_stmt env = function
  | For { var; lo; hi; step; body } ->
      require_int env "loop lower bound" lo;
      require_int env "loop upper bound" hi;
      if step <= 0 then fail "loop step must be positive";
      let env = declare env var (Scalar Tint) in
      check_body env body
  | Assign { lhs; op; rhs } -> (
      ignore op;
      let rhs_t = type_of_expr env rhs in
      match (lookup env lhs.base, lhs.indices) with
      | Array dims, indices ->
          if indices = [] then fail "array '%s' assigned without indices" lhs.base;
          if List.length indices <> List.length dims then
            fail "array '%s' has rank %d but is indexed with %d subscripts" lhs.base
              (List.length dims) (List.length indices);
          List.iter (require_int env "array subscript") indices;
          if rhs_t = Tvoid then fail "void value assigned to '%s'" lhs.base
      | Scalar Tint, [] ->
          if rhs_t <> Tint then fail "integer '%s' assigned a non-integer value" lhs.base
      | Scalar Tfloat, [] ->
          if rhs_t = Tvoid then fail "void value assigned to '%s'" lhs.base
      | Scalar Tvoid, [] -> fail "cannot assign to void '%s'" lhs.base
      | Scalar _, _ :: _ -> fail "scalar '%s' used with indices" lhs.base)
  | Decl_scalar { name; typ; init } ->
      if typ = Tvoid then fail "cannot declare void variable '%s'" name;
      Option.iter
        (fun e ->
          let t = type_of_expr env e in
          match (typ, t) with
          | Tint, Tint -> ()
          | Tfloat, (Tint | Tfloat) -> ()
          | Tint, Tfloat -> fail "integer '%s' initialised with a float" name
          | _, Tvoid | Tvoid, _ -> fail "void in declaration of '%s'" name)
        init
  | Decl_array { name; dims } ->
      if dims = [] then fail "array '%s' needs at least one dimension" name;
      List.iter (fun d -> if d <= 0 then fail "array '%s' has a non-positive dimension" name) dims
  | Block body -> check_body env body

(* Sequential declarations extend the environment for the following
   statements of the same body. *)
and check_body env = function
  | [] -> ()
  | (Decl_scalar { name; typ; _ } as stmt) :: rest ->
      check_stmt env stmt;
      check_body (declare env name (Scalar typ)) rest
  | (Decl_array { name; dims } as stmt) :: rest ->
      check_stmt env stmt;
      check_body (declare env name (Array dims)) rest
  | stmt :: rest ->
      check_stmt env stmt;
      check_body env rest

let check_func f =
  let env =
    List.fold_left
      (fun env p ->
        match p.dims with
        | [] -> declare env p.pname (Scalar p.ptyp)
        | dims -> declare env p.pname (Array dims))
      [] f.params
  in
  check_body env f.body

let check_program fs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.fname then fail "duplicate function '%s'" f.fname;
      Hashtbl.add seen f.fname ();
      check_func f)
    fs
