lib/lang/builder.ml: Ast Typecheck
