lib/lang/interp.mli: Ast Tdo_linalg
