lib/lang/ast.ml: Format List Option String
