lib/lang/lexer.mli:
