lib/lang/interp.ml: Array Ast Int32 List Printf Tdo_linalg
