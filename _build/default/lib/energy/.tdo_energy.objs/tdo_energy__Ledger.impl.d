lib/energy/ledger.ml: Format Table1 Tdo_cimacc Tdo_pcm Tdo_runtime Tdo_util
