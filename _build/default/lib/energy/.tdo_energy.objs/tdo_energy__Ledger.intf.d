lib/energy/ledger.mli: Format Table1 Tdo_runtime
