lib/energy/table1.mli:
