lib/energy/table1.ml: Printf Tdo_util
