(** Energy accounting from the platform's event counters (Section IV:
    "For energy estimates, we use the numbers shown in Table I"; DRAM
    energy is excluded on both sides, as in the paper). *)

type breakdown = {
  host_j : float;  (** instructions x 128 pJ, driver included *)
  crossbar_compute_j : float;
  crossbar_write_j : float;
  mixed_signal_j : float;
  buffers_j : float;
  digital_j : float;
  dma_engine_j : float;
}

val accelerator_j : breakdown -> float
(** Everything but the host term. *)

val total_j : breakdown -> float

val collect :
  ?table:Table1.t -> Tdo_runtime.Platform.t -> host_instructions:int -> breakdown
(** Read the accumulated counters of the platform's accelerator
    (crossbar, ADC bank, digital logic, micro-engine) and combine them
    with [host_instructions] (typically the ROI instruction count). *)

val edp : energy_j:float -> time_s:float -> float
(** Energy-delay product in joule-seconds. *)

val pp : Format.formatter -> breakdown -> unit
