module Platform = Tdo_runtime.Platform
module Crossbar = Tdo_pcm.Crossbar
module Adc = Tdo_pcm.Adc

type breakdown = {
  host_j : float;
  crossbar_compute_j : float;
  crossbar_write_j : float;
  mixed_signal_j : float;
  buffers_j : float;
  digital_j : float;
  dma_engine_j : float;
}

let accelerator_j b =
  b.crossbar_compute_j +. b.crossbar_write_j +. b.mixed_signal_j +. b.buffers_j +. b.digital_j
  +. b.dma_engine_j

let total_j b = b.host_j +. accelerator_j b

let collect ?(table = Table1.ibm_pcm_a7) (platform : Platform.t) ~host_instructions =
  let engine = Tdo_cimacc.Accel.engine platform.Platform.accel in
  let xc = Tdo_cimacc.Micro_engine.total_crossbar_counters engine in
  let conversions = Tdo_cimacc.Micro_engine.total_adc_conversions engine in
  let digital = Tdo_cimacc.Digital_logic.counters (Tdo_cimacc.Micro_engine.digital engine) in
  let f = float_of_int in
  (* a full-width GEMV performs 2 conversions per column (MSB and LSB
     planes); partial-width operations pay per conversion *)
  let mixed_signal_per_conversion =
    table.Table1.mixed_signal_j_per_full_gemv /. (2.0 *. f table.Table1.reference_cols)
  in
  (* input-buffer bytes equal the summed active-row counts, so they
     measure how much of the array's depth each GEMV drove *)
  let dma_engine_j =
    table.Table1.dma_engine_j_per_full_gemv
    *. (f xc.Crossbar.input_buffer_bytes /. f table.Table1.reference_rows)
  in
  {
    host_j = f host_instructions *. table.Table1.host_j_per_instruction;
    crossbar_compute_j = f xc.Crossbar.macs *. table.Table1.crossbar_compute_j_per_mac;
    crossbar_write_j = f xc.Crossbar.write_bytes *. table.Table1.crossbar_write_j_per_byte;
    mixed_signal_j = f conversions *. mixed_signal_per_conversion;
    buffers_j =
      f (xc.Crossbar.input_buffer_bytes + xc.Crossbar.output_buffer_bytes)
      *. table.Table1.buffer_j_per_byte;
    digital_j =
      (f digital.Tdo_cimacc.Digital_logic.weighted_sums *. table.Table1.weighted_sum_j_per_gemv)
      +. (f digital.Tdo_cimacc.Digital_logic.alu_ops *. table.Table1.alu_j_per_op);
    dma_engine_j;
  }

let edp ~energy_j ~time_s = energy_j *. time_s

let pp ppf b =
  let si = Tdo_util.Pretty.si_float ~digits:2 in
  Format.fprintf ppf
    "@[<v>host: %sJ@,crossbar compute: %sJ@,crossbar write: %sJ@,mixed signal: %sJ@,buffers: %sJ@,digital: %sJ@,dma+engine: %sJ@,total: %sJ@]"
    (si b.host_j) (si b.crossbar_compute_j) (si b.crossbar_write_j) (si b.mixed_signal_j)
    (si b.buffers_j) (si b.digital_j) (si b.dma_engine_j)
    (si (total_j b))
