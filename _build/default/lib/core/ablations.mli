(** Ablation studies for the design choices DESIGN.md calls out.

    Each study isolates one mechanism of the flow and measures its
    effect on the quantities the paper reports. All studies are
    deterministic and return plain rows; [print_*] renders a table. *)

(** {1 Operand pinning (smart vs naive mapping, Fig. 5's mechanism)} *)

type pinning_row = {
  mapping : string;
  crossbar_write_bytes : int;
  energy_j : float;
  lifetime_years_at_25m : float;
}

val pinning : ?n:int -> ?seed:int -> unit -> pinning_row list
val print_pinning : ?n:int -> unit -> unit

(** {1 Kernel fusion on/off (Listing 2's mechanism)} *)

type fusion_row = {
  fusion : bool;
  launches : int;
  cache_flushes : int;
  energy_j : float;
  time_s : float;
}

val fusion : ?n:int -> ?seed:int -> unit -> fusion_row list
val print_fusion : ?n:int -> unit -> unit

(** {1 Double buffering in the micro-engine} *)

type double_buffering_row = { double_buffering : bool; device_time_s : float }

val double_buffering : ?n:int -> ?seed:int -> unit -> double_buffering_row list
val print_double_buffering : ?n:int -> unit -> unit

(** {1 Selective-offload threshold sweep (the Selective Geomean knob)} *)

type selective_row = {
  min_intensity : float option;
  offloaded : int;
  kept_on_host : int;
  geomean_energy_improvement : float;
}

val selective : ?dataset:Tdo_polybench.Dataset.t -> ?seed:int -> unit -> selective_row list
val print_selective : ?dataset:Tdo_polybench.Dataset.t -> unit -> unit

(** {1 Crossbar geometry sweep} *)

type geometry_row = {
  xbar_size : int;
  launches : int;
  crossbar_write_bytes : int;
  energy_improvement : float;
}

val geometry : ?n:int -> ?seed:int -> unit -> geometry_row list
(** One GEMM against 32..256 crossbars: smaller arrays mean more tiles,
    more launches, more flush overhead. *)

val print_geometry : ?n:int -> unit -> unit

(** {1 Analog noise vs result accuracy} *)

type noise_row = {
  noise_sigma : float option;
  max_abs_error : float;  (** vs the host result *)
}

val noise : ?n:int -> ?seed:int -> unit -> noise_row list
(** Additive per-column analog noise (in integer-LSB units) against the
    accuracy of an offloaded GEMM — the crossbar non-ideality the
    functional model can inject. *)

val print_noise : ?n:int -> unit -> unit

(** {1 Architectural wear-leveling vs the unlevelled crossbar}

    The paper's related work positions hardware wear-leveling (e.g.
    Start-Gap) as orthogonal to TDO-CIM's compile-time endurance
    optimisations; this study quantifies what Start-Gap contributes
    under skewed write traffic. *)

type wear_leveling_row = {
  scheme : string;
  max_wear : int;
  ideal_max_wear : int;
  overhead_writes : int;  (** gap-copy traffic added by the scheme *)
}

val wear_leveling : ?lines:int -> ?writes:int -> ?seed:int -> unit -> wear_leveling_row list
(** Zipf-skewed row writes against (a) no leveling and (b) Start-Gap
    with a gap move every 16 writes. *)

val print_wear_leveling : unit -> unit

(** {1 Tile count (multi-tile accelerator DSE)}

    The paper's conclusion invites design-space exploration "by
    tweaking our simulator"; this study scales the number of CIM tiles.
    Batched calls whose entries pin different operands (3mm's first two
    products) execute on different tiles in parallel. *)

type tiles_row = {
  tiles : int;
  time_s : float;
  energy_j : float;
  edp_js : float;
}

val tiles : ?n:int -> ?seed:int -> unit -> tiles_row list
(** The 3mm kernel against 1, 2 and 4 tiles. *)

val print_tiles : ?n:int -> unit -> unit

val print_all : unit -> unit
