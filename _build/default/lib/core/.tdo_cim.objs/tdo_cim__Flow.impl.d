lib/core/flow.ml: Tdo_cimacc Tdo_energy Tdo_ir Tdo_lang Tdo_pcm Tdo_runtime Tdo_sim Tdo_tactics
