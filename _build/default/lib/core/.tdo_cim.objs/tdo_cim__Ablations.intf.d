lib/core/ablations.mli: Tdo_polybench
