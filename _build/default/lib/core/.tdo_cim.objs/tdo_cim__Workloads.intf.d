lib/core/workloads.mli: Tdo_lang Tdo_linalg Tdo_util
