lib/core/flow.mli: Tdo_energy Tdo_ir Tdo_lang Tdo_runtime Tdo_tactics
