lib/core/ablations.ml: Array Flow List Printf Result Tdo_cimacc Tdo_linalg Tdo_pcm Tdo_polybench Tdo_runtime Tdo_sim Tdo_tactics Tdo_util Workloads
