lib/core/experiments.ml: Float Flow Format List Printf Tdo_cimacc Tdo_energy Tdo_linalg Tdo_pcm Tdo_polybench Tdo_runtime Tdo_tactics Tdo_util Workloads
