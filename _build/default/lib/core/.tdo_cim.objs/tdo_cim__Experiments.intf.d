lib/core/experiments.mli: Flow Tdo_cimacc Tdo_polybench
