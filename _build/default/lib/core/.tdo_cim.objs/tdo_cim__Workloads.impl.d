lib/core/workloads.ml: Array Int32 Printf Tdo_lang Tdo_util
