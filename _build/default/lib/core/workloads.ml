module Interp = Tdo_lang.Interp
module Prng = Tdo_util.Prng

let random_array g ~dims =
  let arr = Interp.make_array ~dims in
  Array.iteri
    (fun i _ ->
      let v = Prng.float_range g ~lo:(-1.0) ~hi:1.0 in
      arr.Interp.data.(i) <- Int32.float_of_bits (Int32.bits_of_float v))
    arr.Interp.data;
  arr

let gemm_source ~n =
  Printf.sprintf
    {|
void gemm(float alpha, float beta, float C[%d][%d], float A[%d][%d], float B[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      C[i][j] *= beta;
      for (int k = 0; k < %d; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
|}
    n n n n n n n n n

let gemm_args ~n ~seed =
  let g = Prng.create ~seed in
  let a = random_array g ~dims:[ n; n ] in
  let b = random_array g ~dims:[ n; n ] in
  let c = random_array g ~dims:[ n; n ] in
  ( [
      ("alpha", Interp.Vfloat 1.0);
      ("beta", Interp.Vfloat 0.5);
      ("C", Interp.Varray c);
      ("A", Interp.Varray a);
      ("B", Interp.Varray b);
    ],
    fun () -> Interp.mat_of_arr c )

let listing2_source ~n =
  Printf.sprintf
    {|
void listing2(float C[%d][%d], float D[%d][%d], float A[%d][%d], float B[%d][%d], float E[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++)
      for (int k = 0; k < %d; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++)
      for (int k = 0; k < %d; k++)
        D[i][j] += A[i][k] * E[k][j];
}
|}
    n n n n n n n n n n n n n n n n

let listing2_args ~n ~seed =
  let g = Prng.create ~seed in
  let a = random_array g ~dims:[ n; n ] in
  let b = random_array g ~dims:[ n; n ] in
  let e = random_array g ~dims:[ n; n ] in
  let c = Interp.make_array ~dims:[ n; n ] in
  let d = Interp.make_array ~dims:[ n; n ] in
  ( [
      ("C", Interp.Varray c);
      ("D", Interp.Varray d);
      ("A", Interp.Varray a);
      ("B", Interp.Varray b);
      ("E", Interp.Varray e);
    ],
    fun () -> (Interp.mat_of_arr c, Interp.mat_of_arr d) )
