module Ir = Tdo_ir.Ir
module Interp = Tdo_lang.Interp
module Platform = Tdo_runtime.Platform
module Offload = Tdo_tactics.Offload
module Ledger = Tdo_energy.Ledger

type options = { enable_loop_tactics : bool; tactics : Offload.config }

let o3 = { enable_loop_tactics = false; tactics = Offload.default_config }
let o3_loop_tactics = { enable_loop_tactics = true; tactics = Offload.default_config }

let compile ?(options = o3_loop_tactics) source =
  let ast = Tdo_lang.Parser.parse_func source in
  let f = Tdo_ir.Lower.func ast in
  if options.enable_loop_tactics then Tdo_tactics.Pipeline.run ~config:options.tactics f
  else (f, None)

type measurement = {
  roi_instructions : int;
  roi_cycles : int;
  time_s : float;
  energy : Ledger.breakdown;
  energy_j : float;
  edp_js : float;
  used_cim : bool;
  launches : int;
  cim_macs : int;
  cim_write_bytes : int;
  macs_per_cim_write : float;
}

let run ?(platform_config = Platform.default_config) f ~args =
  let platform = Platform.create ~config:platform_config () in
  let metrics = Tdo_ir.Exec.run f ~platform ~args in
  let energy =
    Ledger.collect platform ~host_instructions:metrics.Tdo_ir.Exec.roi_instructions
  in
  let energy_j = Ledger.total_j energy in
  let time_s = Tdo_sim.Time_base.seconds_of_ps metrics.Tdo_ir.Exec.roi_time_ps in
  let xbar =
    Tdo_cimacc.Micro_engine.total_crossbar_counters
      (Tdo_cimacc.Accel.engine platform.Platform.accel)
  in
  let macs = xbar.Tdo_pcm.Crossbar.macs in
  let writes = xbar.Tdo_pcm.Crossbar.write_bytes in
  ( {
      roi_instructions = metrics.Tdo_ir.Exec.roi_instructions;
      roi_cycles = metrics.Tdo_ir.Exec.roi_cycles;
      time_s;
      energy;
      energy_j;
      edp_js = Ledger.edp ~energy_j ~time_s;
      used_cim = metrics.Tdo_ir.Exec.used_cim;
      launches = metrics.Tdo_ir.Exec.cim_launches;
      cim_macs = macs;
      cim_write_bytes = writes;
      macs_per_cim_write =
        (if writes = 0 then 0.0 else float_of_int macs /. float_of_int writes);
    },
    platform )

let run_source ?options ?platform_config source ~args =
  let f, _report = compile ?options source in
  run ?platform_config f ~args
