(** Shared synthetic workloads for experiments, ablations and the
    benchmark harness: the paper's GEMM (Listing 1) and the two
    independent GEMMs sharing A (Listing 2). *)

module Interp = Tdo_lang.Interp

val gemm_source : n:int -> string
(** [C = alpha*A*B + beta*C] with PolyBench's imperfect nest. *)

val gemm_args :
  n:int -> seed:int -> (string * Interp.value) list * (unit -> Tdo_linalg.Mat.t)
(** Fresh deterministic arguments and a readback of C. *)

val listing2_source : n:int -> string
(** Two consecutive GEMMs sharing A (paper Listing 2). *)

val listing2_args :
  n:int -> seed:int -> (string * Interp.value) list * (unit -> Tdo_linalg.Mat.t * Tdo_linalg.Mat.t)
(** Fresh arguments and a readback of (C, D). *)

val random_array : Tdo_util.Prng.t -> dims:int list -> Interp.arr
(** Binary32-rounded uniform [-1, 1) data. *)
