lib/cimacc/timeline.ml: Buffer Bytes Format List Printf Tdo_sim
