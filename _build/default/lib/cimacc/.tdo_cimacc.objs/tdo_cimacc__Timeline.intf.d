lib/cimacc/timeline.mli: Format Tdo_sim
