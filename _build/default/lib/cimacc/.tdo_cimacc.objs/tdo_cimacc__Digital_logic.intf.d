lib/cimacc/digital_logic.mli:
