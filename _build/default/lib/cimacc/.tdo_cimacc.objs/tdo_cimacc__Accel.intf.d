lib/cimacc/accel.mli: Context_regs Micro_engine Tdo_sim
