lib/cimacc/context_regs.ml: Array Int32 Printf Result Tdo_sim
