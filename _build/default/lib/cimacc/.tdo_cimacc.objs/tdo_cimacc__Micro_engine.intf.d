lib/cimacc/micro_engine.mli: Context_regs Digital_logic Tdo_pcm Tdo_sim Timeline
