lib/cimacc/digital_logic.ml: Array
