lib/cimacc/context_regs.mli: Tdo_sim
