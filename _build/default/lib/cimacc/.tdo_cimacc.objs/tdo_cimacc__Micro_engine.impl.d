lib/cimacc/micro_engine.ml: Array Bytes Context_regs Digital_logic Float Int32 List Option Printf Result Tdo_linalg Tdo_pcm Tdo_sim Timeline
