lib/cimacc/accel.ml: Context_regs Micro_engine Tdo_sim
