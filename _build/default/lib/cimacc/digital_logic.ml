type counters = { weighted_sums : int; alu_ops : int }

type t = { mutable sums : int; mutable ops : int }

let create () = { sums = 0; ops = 0 }
let counters t = { weighted_sums = t.sums; alu_ops = t.ops }

let reset_counters t =
  t.sums <- 0;
  t.ops <- 0

let postprocess t ~alpha ~beta ~scale ~raw ~c_old =
  let n = Array.length raw in
  (match c_old with
  | Some c when Array.length c <> n ->
      invalid_arg "Digital_logic.postprocess: c_old length mismatch"
  | Some _ -> ()
  | None -> if beta <> 0.0 then invalid_arg "Digital_logic.postprocess: beta without c_old");
  t.sums <- t.sums + 1;
  let out =
    Array.mapi
      (fun i v ->
        let scaled = alpha *. scale *. float_of_int v in
        match c_old with
        | None -> scaled
        | Some c -> scaled +. (beta *. c.(i)))
      raw
  in
  (* Per element: one rescale multiply, one alpha multiply, and the
     beta multiply-accumulate when the epilogue reads C. *)
  let per_element = if c_old = None then 2 else 4 in
  t.ops <- t.ops + (per_element * n);
  out
