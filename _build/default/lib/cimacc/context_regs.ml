type op = Gemv | Gemm | Gemm_batched
type pin = Pin_a | Pin_b

type job = {
  op : op;
  m : int;
  n : int;
  k : int;
  trans_a : bool;
  trans_b : bool;
  alpha : float;
  beta : float;
  a_addr : int;
  b_addr : int;
  c_addr : int;
  lda : int;
  ldb : int;
  ldc : int;
  batch_count : int;
  batch_desc_addr : int;
  pin : pin;
  generation : int;
}

type status = Idle | Busy | Done | Error

let status_to_string = function
  | Idle -> "idle"
  | Busy -> "busy"
  | Done -> "done"
  | Error -> "error"

let reg_command = 0
let reg_status = 1
let reg_op = 2
let reg_m = 3
let reg_n = 4
let reg_k = 5
let reg_trans = 6
let reg_alpha = 7
let reg_beta = 8
let reg_a_addr = 9
let reg_b_addr = 10
let reg_c_addr = 11
let reg_lda = 12
let reg_ldb = 13
let reg_ldc = 14
let reg_batch_count = 15
let reg_batch_desc = 16
let reg_pin = 17
let reg_generation = 18
let register_words = 20
let register_file_bytes = register_words * 4

let status_code = function Idle -> 0l | Busy -> 1l | Done -> 2l | Error -> 3l

type t = {
  regs : int32 array;
  mutable on_trigger : (job -> unit) option;
  mutable status : status;
  mutable triggers : int;
}

let create () =
  { regs = Array.make register_words 0l; on_trigger = None; status = Idle; triggers = 0 }

let set_on_trigger t f = t.on_trigger <- Some f
let status t = t.status

let set_status t s =
  t.status <- s;
  t.regs.(reg_status) <- status_code s

let geti t reg = Int32.to_int t.regs.(reg) land 0xFFFFFFFF
let getf t reg = Int32.float_of_bits t.regs.(reg)

let decode_job t =
  let ( let* ) = Result.bind in
  let* op =
    match geti t reg_op with
    | 0 -> Ok Gemv
    | 1 -> Ok Gemm
    | 2 -> Ok Gemm_batched
    | code -> Error (Printf.sprintf "unknown op code %d" code)
  in
  let m = geti t reg_m and n = geti t reg_n and k = geti t reg_k in
  let* () =
    if m <= 0 || n <= 0 || k <= 0 then
      Error (Printf.sprintf "non-positive dimensions m=%d n=%d k=%d" m n k)
    else Ok ()
  in
  let* () =
    if op = Gemv && n <> 1 then Error "GEMV requires n = 1" else Ok ()
  in
  let batch_count = geti t reg_batch_count in
  let* () =
    if op = Gemm_batched && batch_count <= 0 then Error "batched GEMM requires a batch count"
    else Ok ()
  in
  let trans = geti t reg_trans in
  let pin = if geti t reg_pin = 1 then Pin_b else Pin_a in
  Ok
    {
      op;
      m;
      n;
      k;
      trans_a = trans land 1 <> 0;
      trans_b = trans land 2 <> 0;
      alpha = getf t reg_alpha;
      beta = getf t reg_beta;
      a_addr = geti t reg_a_addr;
      b_addr = geti t reg_b_addr;
      c_addr = geti t reg_c_addr;
      lda = geti t reg_lda;
      ldb = geti t reg_ldb;
      ldc = geti t reg_ldc;
      batch_count;
      batch_desc_addr = geti t reg_batch_desc;
      pin;
      generation = geti t reg_generation;
    }

let word_offset offset =
  if offset land 3 <> 0 then invalid_arg "Context_regs: unaligned register access";
  let word = offset / 4 in
  if word < 0 || word >= register_words then
    invalid_arg (Printf.sprintf "Context_regs: offset 0x%x out of the register file" offset);
  word

let handler t =
  {
    Tdo_sim.Mmio.read = (fun ~offset -> t.regs.(word_offset offset));
    write =
      (fun ~offset v ->
        let word = word_offset offset in
        if word = reg_status then
          (* status is device-owned; host writes are ignored *)
          ()
        else begin
          t.regs.(word) <- v;
          if word = reg_command && v <> 0l then begin
            t.triggers <- t.triggers + 1;
            match decode_job t with
            | Error _ -> set_status t Error
            | Ok job -> (
                match t.on_trigger with
                | None -> set_status t Error
                | Some f -> f job)
          end
        end);
  }

let triggers t = t.triggers
