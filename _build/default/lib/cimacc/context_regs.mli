(** Context-register file of the CIM accelerator (Sections II-C/II-E).

    The host controls the accelerator exclusively through these
    memory-mapped 32-bit registers: it fills in the operation
    parameters, then writes the command register to trigger execution
    and polls the status register for completion. The register file
    snapshots its contents into a {!job} on trigger, so the host can
    prepare the next call while the engine runs (register double
    buffering). *)

type op = Gemv | Gemm | Gemm_batched

type pin = Pin_a | Pin_b
(** Which operand is written into the crossbar; the other one is
    streamed through the row buffers. The compiler's "smart mapping"
    picks the shared/reused operand (paper Section III-B). *)

type job = {
  op : op;
  m : int;
  n : int;
  k : int;
  trans_a : bool;
  trans_b : bool;
  alpha : float;
  beta : float;
  a_addr : int;
  b_addr : int;
  c_addr : int;
  lda : int;
  ldb : int;
  ldc : int;
  batch_count : int;
  batch_desc_addr : int;
  pin : pin;
  generation : int;
      (** version stamp of the pinned operand's buffer; the engine skips
          reprogramming when address, shape and generation all match *)
}

type status = Idle | Busy | Done | Error

val status_to_string : status -> string

(** Register word offsets (byte offset = 4 x word). *)

val reg_command : int
val reg_status : int
val reg_op : int
val reg_m : int
val reg_n : int
val reg_k : int
val reg_trans : int
val reg_alpha : int
val reg_beta : int
val reg_a_addr : int
val reg_b_addr : int
val reg_c_addr : int
val reg_lda : int
val reg_ldb : int
val reg_ldc : int
val reg_batch_count : int
val reg_batch_desc : int
val reg_pin : int
val reg_generation : int
val register_file_bytes : int

type t

val create : unit -> t

val set_on_trigger : t -> (job -> unit) -> unit
(** Install the engine callback invoked when the command register is
    written with a non-zero value. *)

val handler : t -> Tdo_sim.Mmio.handler
(** The PMIO interface to map on the system's IO space. *)

val status : t -> status
val set_status : t -> status -> unit

val decode_job : t -> (job, string) result
(** Decode the current register contents (also done on trigger);
    exposed for tests and for the driver's sanity checks. *)

val triggers : t -> int
