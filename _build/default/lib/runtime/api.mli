(** User-space CIM runtime library — the [polly_cim*] C API of the
    paper (Fig. 3, Listing 1), the CIM counterpart of cuBLAS/MKL.

    Designed to be called either directly by an application programmer
    (see [examples/runtime_api.ml]) or by the compiler's offload pass
    ({!Tdo_tactics}). Every entry point charges its host-side cost to
    the platform's core 0, so offload overhead is part of every
    measurement.

    Buffers are allocated from the CMA region and exposed to user space
    at virtual addresses; the driver translates on launch. Buffer
    {e generations} let the device recognise that a pinned operand is
    unchanged and skip crossbar reprogramming (the endurance
    optimisation). *)

module Regs = Tdo_cimacc.Context_regs

type buffer = private {
  virt : int;  (** user-space address *)
  phys : int;  (** physical address (device view) *)
  buf_bytes : int;
  mutable generation : int;
  mutable freed : bool;
}

type view = { buf : buffer; offset_elems : int; ld : int }
(** A rectangular window into a buffer of f32 elements, row-major with
    leading dimension [ld]. *)

val view : ?offset_elems:int -> ld:int -> buffer -> view

type t

val init : Platform.t -> t
(** [polly_cimInit]: open the device, reset it, build the runtime
    context. *)

val platform : t -> Platform.t
val driver : t -> Driver.t

val malloc : t -> bytes:int -> (buffer, string) result
(** [polly_cimMalloc]: allocate a device-visible contiguous buffer. *)

val free : t -> buffer -> unit
(** [polly_cimFree]. Raises [Invalid_argument] on double free. *)

val host_to_dev : t -> src:Tdo_linalg.Mat.t -> dst:view -> unit
(** [polly_cimHostToDev]: copy a host matrix into a device buffer
    (charged as host load/store pairs). Bumps the buffer generation. *)

val dev_to_host : t -> src:view -> rows:int -> cols:int -> Tdo_linalg.Mat.t
(** [polly_cimDevToHost]: copy a matrix out of a device buffer. *)

val store_f32 : t -> buffer -> offset_elems:int -> float -> unit
(** Single-element store into a buffer, charged as one host store;
    bumps the generation. Used by the IR executor for in-place
    writes. *)

val load_f32 : t -> buffer -> offset_elems:int -> float

val sgemm :
  t ->
  ?trans_a:bool ->
  ?trans_b:bool ->
  ?pin:Regs.pin ->
  m:int ->
  n:int ->
  k:int ->
  alpha:float ->
  a:view ->
  b:view ->
  beta:float ->
  c:view ->
  unit ->
  (unit, string) result
(** [polly_cimBlasSGemm]: [C <- alpha*op(A)*op(B) + beta*C] on the
    accelerator. Operands larger than the crossbar are decomposed into
    crossbar-sized tiles (one launch per tile) — the library-side
    fallback; the compiler's tiling pass produces exact-fit tiles
    instead. Default [pin] is [Pin_a]. *)

val sgemv :
  t ->
  ?trans_a:bool ->
  m:int ->
  k:int ->
  alpha:float ->
  a:view ->
  x:view ->
  beta:float ->
  y:view ->
  unit ->
  (unit, string) result
(** [polly_cimBlasSGemv]: [y <- alpha*op(A)*x + beta*y]. *)

val gemm_batched :
  t ->
  ?trans_a:bool ->
  ?trans_b:bool ->
  ?pin:Regs.pin ->
  m:int ->
  n:int ->
  k:int ->
  alpha:float ->
  beta:float ->
  batch:(view * view * view) list ->
  unit ->
  (unit, string) result
(** [polly_cimBlasGemmBatched]: one launch for a list of same-shape
    GEMMs (Listing 2's fused form). All views of a batch must share
    leading dimensions. Descriptors are staged in a scratch CMA buffer
    by the host. *)

val dev_im2col :
  t ->
  src:view ->
  src_rows:int ->
  src_cols:int ->
  dst:view ->
  kh:int ->
  kw:int ->
  oh:int ->
  ow:int ->
  unit
(** [polly_cimIm2col]: device-side scatter-gather that lays the
    [kh x kw] window of every output position out as one row of the
    [\[oh*ow\] x \[kh*kw\]] patch matrix:
    [dst(i*ow+j, p*kw+q) = src(i+p, j+q)]. Runs on the accelerator's
    DMA (no host copy loop); the host pays one ioctl and waits out the
    transfer. Used by the conv tactic. Raises [Invalid_argument] on
    geometry that does not fit either buffer. *)

type counters = {
  gemm_calls : int;
  gemv_calls : int;
  batched_calls : int;
  launches : int;  (** device triggers, including per-tile launches *)
  mallocs : int;
  host_to_dev_bytes : int;
  dev_to_host_bytes : int;
}

val counters : t -> counters
