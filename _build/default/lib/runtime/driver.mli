(** Kernel-space CIM driver (paper Fig. 3, Section II-E).

    The driver is the only component that touches the accelerator's
    context registers. It translates user-space virtual buffer
    addresses to the physical addresses the device requires, triggers a
    host-side cache flush before each launch (the accelerator itself
    issues only uncacheable accesses, so flush-before-launch is the
    whole coherence protocol), and exposes launch/await entry points
    that the user-space runtime reaches through ioctl.

    All driver work is charged to the host core: syscall entry,
    register writes, address translation and the flush stall all show
    up in the host's instruction and cycle counts — this is the
    offload overhead that makes low-intensity (GEMV-like) kernels lose
    on CIM in Fig. 6. *)

type wait_policy =
  | Spin  (** busy-wait on the status register, burning host instructions *)
  | Event  (** idle until the completion event (WFI-style; optimistic) *)

type config = {
  wait_policy : wait_policy;
      (** the paper's host "wait[s] on spinlock" — [Spin] charges the
          poll loop's instructions for the whole device busy time *)
  syscall_instructions : int;  (** user/kernel crossing cost, per ioctl *)
  translate_instructions : int;  (** page-table walk per address *)
  reg_write_instructions : int;
  uncached_access_ps : Tdo_sim.Time_base.ps;  (** PMIO register access *)
  poll_instructions : int;  (** one spin iteration *)
  flush_instructions_per_line : int;
      (** the set/way clean-and-invalidate walk executes real
          instructions for every line of L1D and L2; with a 2 MB L2
          this fixed cost dominates the offload overhead of
          low-intensity kernels (Fig. 6's GEMV-like losses) *)
}

val default_config : config

type t

val create : ?config:config -> Platform.t -> t
val config : t -> config

val translate : t -> int -> int
(** Virtual-to-physical translation of a device-buffer address
    (charged). Raises [Invalid_argument] for an address outside the
    CMA region's virtual window and outside physical memory. *)

val launch : t -> Tdo_cimacc.Context_regs.job -> unit
(** One ioctl: enter the kernel, flush L1D and L2, translate the
    job's buffer addresses, program the context registers over PMIO
    and write the command register. The job's addresses are virtual;
    the device sees physical ones. *)

val await : t -> (unit, string) result
(** Spin on the status register until the device reports done or
    error, fast-forwarding the host clock to the device's completion
    event. [Error] carries the device's reason. Raises [Failure] if
    the device can never complete (no pending event). *)

val ioctls : t -> int
val cache_flushes : t -> int
val reg_writes : t -> int
val translations : t -> int
val flush_stall_ps : t -> Tdo_sim.Time_base.ps
val wait_stall_ps : t -> Tdo_sim.Time_base.ps
