module Sim = Tdo_sim
module Regs = Tdo_cimacc.Context_regs
module Mat = Tdo_linalg.Mat

type buffer = {
  virt : int;
  phys : int;
  buf_bytes : int;
  mutable generation : int;
  mutable freed : bool;
}

type view = { buf : buffer; offset_elems : int; ld : int }

let view ?(offset_elems = 0) ~ld buf =
  if offset_elems < 0 || 4 * offset_elems >= buf.buf_bytes then
    invalid_arg "Api.view: offset outside the buffer";
  if ld <= 0 then invalid_arg "Api.view: leading dimension must be positive";
  { buf; offset_elems; ld }

type counters = {
  gemm_calls : int;
  gemv_calls : int;
  batched_calls : int;
  launches : int;
  mallocs : int;
  host_to_dev_bytes : int;
  dev_to_host_bytes : int;
}

let zero_counters =
  {
    gemm_calls = 0;
    gemv_calls = 0;
    batched_calls = 0;
    launches = 0;
    mallocs = 0;
    host_to_dev_bytes = 0;
    dev_to_host_bytes = 0;
  }

type t = {
  platform : Platform.t;
  driver : Driver.t;
  mutable counters : counters;
  mutable generation_source : int;
}

let init platform =
  let driver = Driver.create platform in
  let t = { platform; driver; counters = zero_counters; generation_source = 0 } in
  (* device-open cost of polly_cimInit *)
  let cpu = Platform.cpu platform in
  for _ = 1 to 400 do
    Sim.Cpu.issue cpu Sim.Cpu.Int_alu
  done;
  t

let platform t = t.platform
let driver t = t.driver
let counters t = t.counters

let malloc t ~bytes =
  match Cma.alloc t.platform.Platform.cma ~bytes with
  | Error reason -> Error reason
  | Ok phys ->
      t.counters <- { t.counters with mallocs = t.counters.mallocs + 1 };
      t.generation_source <- t.generation_source + 1;
      Ok
        {
          virt = phys + t.platform.Platform.config.Platform.virt_offset;
          phys;
          buf_bytes = bytes;
          generation = t.generation_source;
          freed = false;
        }

let free t buffer =
  if buffer.freed then invalid_arg "Api.free: double free";
  buffer.freed <- true;
  Cma.free t.platform.Platform.cma buffer.phys

let check_live name buffer = if buffer.freed then invalid_arg (name ^ ": buffer was freed")

let bump_generation t buffer =
  t.generation_source <- t.generation_source + 1;
  buffer.generation <- t.generation_source

(* Host-side copy loop: one cached store (plus address arithmetic) per
   element, with the data written straight to physical memory (the
   cache model is timing-only). *)
let store_elem t buffer ~offset_elems value =
  let addr = buffer.phys + (4 * offset_elems) in
  if addr + 4 > buffer.phys + buffer.buf_bytes then
    invalid_arg "Api: store beyond the end of the buffer";
  let cpu = Platform.cpu t.platform in
  Sim.Cpu.issue cpu Sim.Cpu.Int_alu;
  Sim.Cpu.issue cpu ~addr Sim.Cpu.Store;
  Sim.Memory.write_f32 t.platform.Platform.memory addr value

let load_elem t buffer ~offset_elems =
  let addr = buffer.phys + (4 * offset_elems) in
  if addr + 4 > buffer.phys + buffer.buf_bytes then
    invalid_arg "Api: load beyond the end of the buffer";
  let cpu = Platform.cpu t.platform in
  Sim.Cpu.issue cpu Sim.Cpu.Int_alu;
  Sim.Cpu.issue cpu ~addr Sim.Cpu.Load;
  Sim.Memory.read_f32 t.platform.Platform.memory addr

let host_to_dev t ~src ~dst =
  check_live "Api.host_to_dev" dst.buf;
  Mat.iteri
    ~f:(fun i j v -> store_elem t dst.buf ~offset_elems:(dst.offset_elems + (i * dst.ld) + j) v)
    src;
  let bytes = 4 * Mat.rows src * Mat.cols src in
  t.counters <- { t.counters with host_to_dev_bytes = t.counters.host_to_dev_bytes + bytes };
  bump_generation t dst.buf

let dev_to_host t ~src ~rows ~cols =
  check_live "Api.dev_to_host" src.buf;
  let out =
    Mat.init ~rows ~cols ~f:(fun i j ->
        load_elem t src.buf ~offset_elems:(src.offset_elems + (i * src.ld) + j))
  in
  let bytes = 4 * rows * cols in
  t.counters <- { t.counters with dev_to_host_bytes = t.counters.dev_to_host_bytes + bytes };
  out

let store_f32 t buffer ~offset_elems value =
  check_live "Api.store_f32" buffer;
  store_elem t buffer ~offset_elems value;
  bump_generation t buffer

let load_f32 t buffer ~offset_elems =
  check_live "Api.load_f32" buffer;
  load_elem t buffer ~offset_elems

(* Element offset of position (row, col) of op(M) within the physical
   matrix, honouring a transposition flag. *)
let op_offset ~trans ~ld ~row ~col = if trans then (col * ld) + row else (row * ld) + col

let launch_and_wait t job =
  t.counters <- { t.counters with launches = t.counters.launches + 1 };
  Driver.launch t.driver job;
  Driver.await t.driver

let sgemm_untiled t ~op ~trans_a ~trans_b ~pin ~m ~n ~k ~alpha ~a ~b ~beta ~c =
  let pinned_buf = match pin with Regs.Pin_a -> a.buf | Regs.Pin_b -> b.buf in
  let job =
    {
      Regs.op;
      m;
      n;
      k;
      trans_a;
      trans_b;
      alpha;
      beta;
      a_addr = a.buf.virt + (4 * a.offset_elems);
      b_addr = b.buf.virt + (4 * b.offset_elems);
      c_addr = c.buf.virt + (4 * c.offset_elems);
      lda = a.ld;
      ldb = b.ld;
      ldc = c.ld;
      batch_count = 0;
      batch_desc_addr = 0;
      pin;
      generation = pinned_buf.generation;
    }
  in
  launch_and_wait t job

let xbar_limits t =
  let cfg =
    (Tdo_pcm.Crossbar.config
       (Tdo_cimacc.Micro_engine.crossbar (Tdo_cimacc.Accel.engine t.platform.Platform.accel)))
  in
  (cfg.Tdo_pcm.Crossbar.rows, cfg.Tdo_pcm.Crossbar.cols)

let subview v ~elems = { v with offset_elems = v.offset_elems + elems }

(* One batched launch; callers have validated liveness and fit. *)
let launch_batched t ~trans_a ~trans_b ~pin ~m ~n ~k ~alpha ~beta ~batch =
  let a0, b0, c0 = List.hd batch in
  let count = List.length batch in
  match malloc t ~bytes:(12 * count) with
  | Error reason -> Error reason
  | Ok scratch ->
      (* Stage physical descriptor triples; the host writes them like
         any other shared-memory data. *)
      List.iteri
        (fun i (a, b, c) ->
          let word j v =
            let cpu = Platform.cpu t.platform in
            Sim.Cpu.issue cpu Sim.Cpu.Int_alu;
            Sim.Cpu.issue cpu ~addr:(scratch.phys + (12 * i) + (4 * j)) Sim.Cpu.Store;
            Sim.Memory.write_i32 t.platform.Platform.memory
              (scratch.phys + (12 * i) + (4 * j))
              (Int32.of_int v)
          in
          word 0 (a.buf.phys + (4 * a.offset_elems));
          word 1 (b.buf.phys + (4 * b.offset_elems));
          word 2 (c.buf.phys + (4 * c.offset_elems)))
        batch;
      let pinned_buf = match pin with Regs.Pin_a -> a0.buf | Regs.Pin_b -> b0.buf in
      let job =
        {
          Regs.op = Regs.Gemm_batched;
          m;
          n;
          k;
          trans_a;
          trans_b;
          alpha;
          beta;
          a_addr = a0.buf.virt + (4 * a0.offset_elems);
          b_addr = b0.buf.virt + (4 * b0.offset_elems);
          c_addr = c0.buf.virt + (4 * c0.offset_elems);
          lda = a0.ld;
          ldb = b0.ld;
          ldc = c0.ld;
          batch_count = count;
          batch_desc_addr = scratch.virt;
          pin;
          generation = pinned_buf.generation;
        }
      in
      let result = launch_and_wait t job in
      free t scratch;
      result

let sgemm t ?(trans_a = false) ?(trans_b = false) ?(pin = Regs.Pin_a) ~m ~n ~k ~alpha ~a ~b
    ~beta ~c () =
  check_live "Api.sgemm" a.buf;
  check_live "Api.sgemm" b.buf;
  check_live "Api.sgemm" c.buf;
  t.counters <- { t.counters with gemm_calls = t.counters.gemm_calls + 1 };
  let xbar_rows, xbar_cols = xbar_limits t in
  let tile_k = min k xbar_rows in
  let fits_untouched =
    k <= xbar_rows && (match pin with Regs.Pin_a -> m <= xbar_cols | Regs.Pin_b -> n <= xbar_cols)
  in
  let outer_total = match pin with Regs.Pin_a -> m | Regs.Pin_b -> n in
  let tile_outer_uniform = min outer_total xbar_cols in
  if fits_untouched then
    sgemm_untiled t ~op:Regs.Gemm ~trans_a ~trans_b ~pin ~m ~n ~k ~alpha ~a ~b ~beta ~c
  else if k <= xbar_rows && outer_total mod tile_outer_uniform = 0 then begin
    (* Only the pinned dimension overflows and it splits into uniform
       tiles: one batched launch (one ioctl, one cache flush) whose
       entries are the tiles. *)
    let tiles = outer_total / tile_outer_uniform in
    let entry idx =
      let o0 = idx * tile_outer_uniform in
      match pin with
      | Regs.Pin_a ->
          ( subview a ~elems:(op_offset ~trans:trans_a ~ld:a.ld ~row:o0 ~col:0),
            b,
            subview c ~elems:(o0 * c.ld) )
      | Regs.Pin_b ->
          ( a,
            subview b ~elems:(op_offset ~trans:trans_b ~ld:b.ld ~row:0 ~col:o0),
            subview c ~elems:o0 )
    in
    let batch = List.init tiles entry in
    let tm, tn =
      match pin with
      | Regs.Pin_a -> (tile_outer_uniform, n)
      | Regs.Pin_b -> (m, tile_outer_uniform)
    in
    launch_batched t ~trans_a ~trans_b ~pin ~m:tm ~n:tn ~k ~alpha ~beta ~batch
  end
  else begin
    (* General fallback: decompose into exact-fit tiles, accumulating
       along k with beta folded into the first k-tile. *)
    let rec loop_outer o0 acc =
      let outer_total = match pin with Regs.Pin_a -> m | Regs.Pin_b -> n in
      if o0 >= outer_total || Result.is_error acc then acc
      else begin
        let tile_outer = min (outer_total - o0) xbar_cols in
        let rec loop_k k0 acc =
          if k0 >= k || Result.is_error acc then acc
          else begin
            let tk = min (k - k0) tile_k in
            let beta' = if k0 = 0 then beta else 1.0 in
            let result =
              match pin with
              | Regs.Pin_a ->
                  let a' = subview a ~elems:(op_offset ~trans:trans_a ~ld:a.ld ~row:o0 ~col:k0) in
                  let b' = subview b ~elems:(op_offset ~trans:trans_b ~ld:b.ld ~row:k0 ~col:0) in
                  let c' = subview c ~elems:(o0 * c.ld) in
                  sgemm_untiled t ~op:Regs.Gemm ~trans_a ~trans_b ~pin ~m:tile_outer ~n ~k:tk
                    ~alpha ~a:a' ~b:b' ~beta:beta' ~c:c'
              | Regs.Pin_b ->
                  let a' = subview a ~elems:(op_offset ~trans:trans_a ~ld:a.ld ~row:0 ~col:k0) in
                  let b' = subview b ~elems:(op_offset ~trans:trans_b ~ld:b.ld ~row:k0 ~col:o0) in
                  let c' = subview c ~elems:o0 in
                  sgemm_untiled t ~op:Regs.Gemm ~trans_a ~trans_b ~pin ~m ~n:tile_outer ~k:tk
                    ~alpha ~a:a' ~b:b' ~beta:beta' ~c:c'
            in
            loop_k (k0 + tk) result
          end
        in
        loop_outer (o0 + tile_outer) (loop_k 0 acc)
      end
    in
    loop_outer 0 (Ok ())
  end

let sgemv t ?(trans_a = false) ~m ~k ~alpha ~a ~x ~beta ~y () =
  check_live "Api.sgemv" a.buf;
  check_live "Api.sgemv" x.buf;
  check_live "Api.sgemv" y.buf;
  t.counters <- { t.counters with gemv_calls = t.counters.gemv_calls + 1 };
  let xbar_rows, xbar_cols = xbar_limits t in
  if k <= xbar_rows && m <= xbar_cols then
    sgemm_untiled t ~op:Regs.Gemv ~trans_a ~trans_b:false ~pin:Regs.Pin_a ~m ~n:1 ~k ~alpha ~a
      ~b:x ~beta ~c:y
  else sgemm t ~trans_a ~pin:Regs.Pin_a ~m ~n:1 ~k ~alpha ~a ~b:x ~beta ~c:y ()

let gemm_batched t ?(trans_a = false) ?(trans_b = false) ?(pin = Regs.Pin_a) ~m ~n ~k ~alpha
    ~beta ~batch () =
  (match batch with [] -> invalid_arg "Api.gemm_batched: empty batch" | _ :: _ -> ());
  List.iter
    (fun (a, b, c) ->
      check_live "Api.gemm_batched" a.buf;
      check_live "Api.gemm_batched" b.buf;
      check_live "Api.gemm_batched" c.buf)
    batch;
  t.counters <- { t.counters with batched_calls = t.counters.batched_calls + 1 };
  let xbar_rows, xbar_cols = xbar_limits t in
  let pinned_cols = match pin with Regs.Pin_a -> m | Regs.Pin_b -> n in
  if k > xbar_rows || pinned_cols > xbar_cols then
    Error
      (Printf.sprintf "Api.gemm_batched: %dx%d pinned operand exceeds the %dx%d crossbar"
         k pinned_cols xbar_rows xbar_cols)
  else launch_batched t ~trans_a ~trans_b ~pin ~m ~n ~k ~alpha ~beta ~batch

let dev_im2col t ~src ~src_rows ~src_cols ~dst ~kh ~kw ~oh ~ow =
  check_live "Api.dev_im2col" src.buf;
  check_live "Api.dev_im2col" dst.buf;
  if kh <= 0 || kw <= 0 || oh <= 0 || ow <= 0 then
    invalid_arg "Api.dev_im2col: non-positive geometry";
  if oh + kh - 1 > src_rows || ow + kw - 1 > src_cols then
    invalid_arg "Api.dev_im2col: window exceeds the source";
  if dst.ld < kh * kw then invalid_arg "Api.dev_im2col: destination rows too narrow";
  let memory = t.platform.Platform.memory in
  let src_at r c = src.buf.phys + (4 * (src.offset_elems + (r * src.ld) + c)) in
  let dst_at r c = dst.buf.phys + (4 * (dst.offset_elems + (r * dst.ld) + c)) in
  let dst_end = dst_at ((oh * ow) - 1) ((kh * kw) - 1) in
  if dst_end + 4 > dst.buf.phys + dst.buf.buf_bytes then
    invalid_arg "Api.dev_im2col: destination too small";
  for i = 0 to oh - 1 do
    for j = 0 to ow - 1 do
      for p = 0 to kh - 1 do
        for q = 0 to kw - 1 do
          Sim.Memory.write_f32 memory
            (dst_at ((i * ow) + j) ((p * kw) + q))
            (Sim.Memory.read_f32 memory (src_at (i + p) (j + q)))
        done
      done
    done
  done;
  (* timing: the engine's DMA moves the gathered bytes in and the packed
     matrix out; the host pays one ioctl and waits *)
  let bytes = 4 * oh * ow * kh * kw in
  let dma = Tdo_cimacc.Accel.dma t.platform.Platform.accel in
  let latency = Sim.Dma.charge dma ~bytes + Sim.Dma.charge dma ~bytes in
  let cpu = Platform.cpu t.platform in
  Sim.Cpu.issue_many cpu Sim.Cpu.Int_alu 200;
  Sim.Cpu.stall_ps cpu latency;
  bump_generation t dst.buf
