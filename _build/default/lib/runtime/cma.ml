type config = { base : int; size : int; alignment : int }

let default_config = { base = 0x3000_0000; size = 64 * 1024 * 1024; alignment = 256 }

type t = {
  config : config;
  mutable free_list : (int * int) list;  (** (addr, size), sorted by addr *)
  live : (int, int) Hashtbl.t;  (** addr -> rounded size *)
  mutable allocations : int;
  mutable frees : int;
  mutable allocated : int;
  mutable peak : int;
}

let create ?(config = default_config) () =
  if config.size <= 0 then invalid_arg "Cma.create: empty region";
  if config.alignment <= 0 || config.alignment land (config.alignment - 1) <> 0 then
    invalid_arg "Cma.create: alignment must be a positive power of two";
  if config.base mod config.alignment <> 0 then
    invalid_arg "Cma.create: base must be aligned";
  {
    config;
    free_list = [ (config.base, config.size) ];
    live = Hashtbl.create 64;
    allocations = 0;
    frees = 0;
    allocated = 0;
    peak = 0;
  }

let config t = t.config

let round_up t bytes = (bytes + t.config.alignment - 1) / t.config.alignment * t.config.alignment

let alloc t ~bytes =
  if bytes <= 0 then Error "Cma.alloc: non-positive size"
  else begin
    let need = round_up t bytes in
    (* first fit *)
    let rec take acc = function
      | [] -> None
      | (addr, size) :: rest when size >= need ->
          let remainder = if size > need then [ (addr + need, size - need) ] else [] in
          Some (addr, List.rev_append acc (remainder @ rest))
      | block :: rest -> take (block :: acc) rest
    in
    match take [] t.free_list with
    | None -> Error (Printf.sprintf "Cma.alloc: no contiguous block of %d bytes" need)
    | Some (addr, free_list) ->
        t.free_list <- free_list;
        Hashtbl.add t.live addr need;
        t.allocations <- t.allocations + 1;
        t.allocated <- t.allocated + need;
        t.peak <- max t.peak t.allocated;
        Ok addr
  end

let free t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg (Printf.sprintf "Cma.free: 0x%x was not allocated" addr)
  | Some size ->
      Hashtbl.remove t.live addr;
      t.frees <- t.frees + 1;
      t.allocated <- t.allocated - size;
      (* insert sorted, then coalesce neighbours *)
      let merged =
        List.sort compare ((addr, size) :: t.free_list)
        |> List.fold_left
             (fun acc (a, s) ->
               match acc with
               | (pa, ps) :: rest when pa + ps = a -> (pa, ps + s) :: rest
               | _ -> (a, s) :: acc)
             []
        |> List.rev
      in
      t.free_list <- merged

let is_allocated t addr = Hashtbl.mem t.live addr
let allocation_size t addr = Hashtbl.find_opt t.live addr
let allocated_bytes t = t.allocated
let free_bytes t = List.fold_left (fun acc (_, s) -> acc + s) 0 t.free_list
let largest_free_block t = List.fold_left (fun acc (_, s) -> max acc s) 0 t.free_list
let allocations t = t.allocations
let frees t = t.frees
let peak_allocated_bytes t = t.peak
