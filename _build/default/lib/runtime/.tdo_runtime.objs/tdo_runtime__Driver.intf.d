lib/runtime/driver.mli: Platform Tdo_cimacc Tdo_sim
