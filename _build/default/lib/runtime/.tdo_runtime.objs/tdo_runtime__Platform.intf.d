lib/runtime/platform.mli: Cma Tdo_cimacc Tdo_sim
