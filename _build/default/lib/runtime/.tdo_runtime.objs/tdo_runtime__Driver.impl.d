lib/runtime/driver.ml: Int32 Option Platform Printf Tdo_cimacc Tdo_sim
