lib/runtime/cma.mli:
