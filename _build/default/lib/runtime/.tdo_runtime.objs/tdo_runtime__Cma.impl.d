lib/runtime/cma.ml: Hashtbl List Printf
