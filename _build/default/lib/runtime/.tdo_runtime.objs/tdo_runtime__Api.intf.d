lib/runtime/api.mli: Driver Platform Tdo_cimacc Tdo_linalg
