lib/runtime/platform.ml: Array Cma Tdo_cimacc Tdo_sim
