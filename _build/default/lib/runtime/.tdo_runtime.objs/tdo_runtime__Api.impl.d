lib/runtime/api.ml: Cma Driver Int32 List Platform Printf Result Tdo_cimacc Tdo_linalg Tdo_pcm Tdo_sim
