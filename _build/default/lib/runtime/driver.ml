module Sim = Tdo_sim
module Regs = Tdo_cimacc.Context_regs

type wait_policy = Spin | Event

type config = {
  wait_policy : wait_policy;
  syscall_instructions : int;
  translate_instructions : int;
  reg_write_instructions : int;
  uncached_access_ps : Sim.Time_base.ps;
  poll_instructions : int;
  flush_instructions_per_line : int;
}

let default_config =
  {
    wait_policy = Spin;
    syscall_instructions = 180;
    translate_instructions = 12;
    reg_write_instructions = 4;
    uncached_access_ps = 20 * Sim.Time_base.ps_per_ns;
    poll_instructions = 8;
    flush_instructions_per_line = 2;
  }

type t = {
  config : config;
  platform : Platform.t;
  mutable ioctls : int;
  mutable cache_flushes : int;
  mutable reg_writes : int;
  mutable translations : int;
  mutable flush_stall_ps : Sim.Time_base.ps;
  mutable wait_stall_ps : Sim.Time_base.ps;
}

let create ?(config = default_config) platform =
  {
    config;
    platform;
    ioctls = 0;
    cache_flushes = 0;
    reg_writes = 0;
    translations = 0;
    flush_stall_ps = 0;
    wait_stall_ps = 0;
  }

let config t = t.config

let charge_instructions t n =
  let cpu = Platform.cpu t.platform in
  for _ = 1 to n do
    Sim.Cpu.issue cpu Sim.Cpu.Int_alu
  done

let translate t addr =
  charge_instructions t t.config.translate_instructions;
  t.translations <- t.translations + 1;
  if Platform.is_device_virtual t.platform addr then Platform.resolve t.platform addr
  else if addr >= 0 && addr < (Sim.Memory.config t.platform.Platform.memory).Sim.Memory.size_bytes
  then addr
  else invalid_arg (Printf.sprintf "Driver.translate: unmapped address 0x%x" addr)

let cache_lines cache =
  let cfg = Sim.Cache.config cache in
  cfg.Sim.Cache.size_bytes / cfg.Sim.Cache.line_bytes

let flush_caches t =
  let cpu = Platform.cpu t.platform in
  (* set/way walk over both caches: real instructions on the host *)
  let lines = cache_lines t.platform.Platform.l1d + cache_lines t.platform.Platform.l2 in
  Sim.Cpu.issue_many cpu Sim.Cpu.Int_alu (lines * t.config.flush_instructions_per_line);
  let lat =
    Sim.Cache.flush t.platform.Platform.l1d + Sim.Cache.flush t.platform.Platform.l2
  in
  Sim.Cpu.stall_ps cpu lat;
  t.cache_flushes <- t.cache_flushes + 1;
  t.flush_stall_ps <- t.flush_stall_ps + lat

let write_reg t ~reg value =
  charge_instructions t t.config.reg_write_instructions;
  Sim.Cpu.stall_ps (Platform.cpu t.platform) t.config.uncached_access_ps;
  t.reg_writes <- t.reg_writes + 1;
  Platform.sync_queue_to_cpu t.platform;
  Sim.Mmio.write t.platform.Platform.mmio
    ~addr:(t.platform.Platform.config.Platform.register_base + (4 * reg))
    value

let read_reg t ~reg =
  charge_instructions t t.config.poll_instructions;
  Sim.Cpu.stall_ps (Platform.cpu t.platform) t.config.uncached_access_ps;
  Sim.Mmio.read t.platform.Platform.mmio
    ~addr:(t.platform.Platform.config.Platform.register_base + (4 * reg))

let launch t (job : Regs.job) =
  t.ioctls <- t.ioctls + 1;
  charge_instructions t t.config.syscall_instructions;
  (* Coherence: make every host-side store visible to the device's
     uncacheable reads before it starts. *)
  flush_caches t;
  let wi reg v = write_reg t ~reg (Int32.of_int v) in
  let wf reg v = write_reg t ~reg (Int32.bits_of_float v) in
  wi Regs.reg_op
    (match job.Regs.op with Regs.Gemv -> 0 | Regs.Gemm -> 1 | Regs.Gemm_batched -> 2);
  wi Regs.reg_m job.Regs.m;
  wi Regs.reg_n job.Regs.n;
  wi Regs.reg_k job.Regs.k;
  wi Regs.reg_trans ((if job.Regs.trans_a then 1 else 0) lor if job.Regs.trans_b then 2 else 0);
  wf Regs.reg_alpha job.Regs.alpha;
  wf Regs.reg_beta job.Regs.beta;
  wi Regs.reg_a_addr (translate t job.Regs.a_addr);
  wi Regs.reg_b_addr (translate t job.Regs.b_addr);
  wi Regs.reg_c_addr (translate t job.Regs.c_addr);
  wi Regs.reg_lda job.Regs.lda;
  wi Regs.reg_ldb job.Regs.ldb;
  wi Regs.reg_ldc job.Regs.ldc;
  wi Regs.reg_batch_count job.Regs.batch_count;
  wi Regs.reg_batch_desc
    (if job.Regs.batch_desc_addr = 0 then 0 else translate t job.Regs.batch_desc_addr);
  wi Regs.reg_pin (match job.Regs.pin with Regs.Pin_a -> 0 | Regs.Pin_b -> 1);
  wi Regs.reg_generation job.Regs.generation;
  Platform.sync_queue_to_cpu t.platform;
  wi Regs.reg_command 1

let await t =
  let accel = t.platform.Platform.accel in
  let queue = t.platform.Platform.queue in
  let cpu = Platform.cpu t.platform in
  let rec spin () =
    let status = read_reg t ~reg:Regs.reg_status in
    match Int32.to_int status with
    | 2 (* done *) -> Ok ()
    | 3 (* error *) ->
        Error (Option.value ~default:"device error" (Tdo_cimacc.Accel.last_error accel))
    | 0 | 1 ->
        (* Fast-forward to the device's next event instead of burning
           host cycles one poll at a time. *)
        if Sim.Event_queue.pending queue = 0 then
          failwith "Driver.await: device busy with no pending completion event";
        ignore (Sim.Event_queue.run_next queue);
        let ahead = Sim.Event_queue.now queue - Sim.Cpu.time_ps cpu in
        if ahead > 0 then begin
          (match t.config.wait_policy with
          | Event -> Sim.Cpu.stall_ps cpu ahead
          | Spin ->
              (* one poll iteration = the loop body's instructions plus
                 the uncached status read; issue the instructions (they
                 advance the clock by themselves) and stall only for the
                 register-access share of the wait *)
              let period = Sim.Cpu.config cpu in
              let cycle_ps = Tdo_sim.Time_base.period_ps ~freq_hz:period.Sim.Cpu.freq_hz in
              let iteration_ps =
                (t.config.poll_instructions * cycle_ps) + t.config.uncached_access_ps
              in
              let iterations = ahead / iteration_ps in
              let instructions = iterations * t.config.poll_instructions in
              Sim.Cpu.issue_many cpu Sim.Cpu.Int_alu instructions;
              let remaining = ahead - (instructions * cycle_ps) in
              if remaining > 0 then Sim.Cpu.stall_ps cpu remaining);
          t.wait_stall_ps <- t.wait_stall_ps + ahead
        end;
        spin ()
    | code -> failwith (Printf.sprintf "Driver.await: unknown status code %d" code)
  in
  spin ()

let ioctls t = t.ioctls
let cache_flushes t = t.cache_flushes
let reg_writes t = t.reg_writes
let translations t = t.translations
let flush_stall_ps t = t.flush_stall_ps
let wait_stall_ps t = t.wait_stall_ps
