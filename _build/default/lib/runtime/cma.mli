(** Contiguous memory allocator (CMA).

    The CIM runtime allocates device-visible buffers from a reserved,
    physically contiguous region of main memory through the Linux CMA
    API (paper Section II-E): the accelerator's DMA needs physically
    contiguous pages, buffer sizes are not limited by the page boundary,
    and the driver needs no per-page management.

    First-fit free-list allocator with coalescing on free. *)

type config = {
  base : int;  (** physical base address of the reserved region *)
  size : int;  (** region size in bytes *)
  alignment : int;  (** every allocation is aligned to this; power of two *)
}

val default_config : config
(** 64 MB at 0x3000_0000, 256-byte aligned. *)

type t

val create : ?config:config -> unit -> t
val config : t -> config

val alloc : t -> bytes:int -> (int, string) result
(** Physical address of a fresh block, or [Error] when no contiguous
    block is large enough. Zero-byte requests are rejected. *)

val free : t -> int -> unit
(** Raises [Invalid_argument] if the address was not returned by
    {!alloc} (double free included). *)

val is_allocated : t -> int -> bool
val allocation_size : t -> int -> int option

val allocated_bytes : t -> int
val free_bytes : t -> int
val largest_free_block : t -> int
val allocations : t -> int
val frees : t -> int
val peak_allocated_bytes : t -> int
