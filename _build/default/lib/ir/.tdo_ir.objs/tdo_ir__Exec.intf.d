lib/ir/exec.mli: Ir Tdo_lang Tdo_runtime
