lib/ir/ir.mli: Format Tdo_lang
