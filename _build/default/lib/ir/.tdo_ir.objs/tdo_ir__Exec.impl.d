lib/ir/exec.ml: Array Hashtbl Ir List Printf Tdo_cimacc Tdo_lang Tdo_linalg Tdo_runtime Tdo_sim
