lib/ir/lower.ml: Ir List String Tdo_lang
