lib/ir/ir.ml: Format List Tdo_lang
