lib/ir/lower.mli: Ir Tdo_lang
