(** Front-end lowering: type-checked AST -> IR.

    Structure is preserved one-to-one (the polyhedral passes want the
    loops intact); the pass adds the ROI markers around the function
    body, which is how the flow profiles kernels (paper Section IV). *)

val func : Tdo_lang.Ast.func -> Ir.func
(** Raises {!Tdo_lang.Typecheck.Type_error} if the function does not
    type-check. *)
