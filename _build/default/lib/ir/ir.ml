module Ast = Tdo_lang.Ast

type pin = Pin_a | Pin_b

type mat_ref = {
  array : string;
  row_off : Ast.expr;
  col_off : Ast.expr;
  rows : int;
  cols : int;
  trans : bool;
}

and call =
  | Cim_init
  | Cim_alloc of { array : string }
  | Cim_h2d of { array : string }
  | Cim_d2h of { array : string }
  | Cim_free of { array : string }
  | Cim_gemm of {
      m : int;
      n : int;
      k : int;
      alpha : Ast.expr;
      beta : Ast.expr;
      a : mat_ref;
      b : mat_ref;
      c : mat_ref;
      pin : pin;
    }
  | Cim_gemm_batched of {
      m : int;
      n : int;
      k : int;
      alpha : Ast.expr;
      beta : Ast.expr;
      batch : (mat_ref * mat_ref * mat_ref) list;
      pin : pin;
    }
  | Cim_im2col of { src : string; dst : string; kh : int; kw : int; oh : int; ow : int }

type stmt =
  | For of { var : string; lo : Ast.expr; hi : Ast.expr; step : int; body : stmt list }
  | Assign of { lhs : Ast.lvalue; op : Ast.assign_op; rhs : Ast.expr }
  | Decl_scalar of { name : string; typ : Ast.typ; init : Ast.expr option }
  | Decl_array of { name : string; dims : int list }
  | Call of call
  | Roi_begin
  | Roi_end

type func = { name : string; params : Ast.param list; body : stmt list }

let mat_ref_whole ~array ~rows ~cols ?(trans = false) () =
  { array; row_off = Ast.Int_lit 0; col_off = Ast.Int_lit 0; rows; cols; trans }

let pp_mat_ref ppf r =
  let pp_off ppf (e : Ast.expr) =
    match e with Ast.Int_lit 0 -> () | e -> Format.fprintf ppf "+%a" Ast.pp_expr e
  in
  Format.fprintf ppf "cim_%s[%a%a, %dx%d%s]" r.array pp_off r.row_off pp_off r.col_off r.rows
    r.cols
    (if r.trans then "^T" else "")

let pp_call ppf = function
  | Cim_init -> Format.fprintf ppf "polly_cimInit(0);"
  | Cim_alloc { array } -> Format.fprintf ppf "polly_cimMalloc((void**)&cim_%s, ...);" array
  | Cim_h2d { array } -> Format.fprintf ppf "polly_cimHostToDev(cim_%s, %s, ...);" array array
  | Cim_d2h { array } -> Format.fprintf ppf "polly_cimDevToHost(%s, cim_%s, ...);" array array
  | Cim_free { array } -> Format.fprintf ppf "polly_cimFree(cim_%s);" array
  | Cim_gemm { m; n; k; alpha; beta; a; b; c; pin } ->
      Format.fprintf ppf
        "polly_cimBlasSGemm(m=%d, n=%d, k=%d, alpha=%a, %a, %a, beta=%a, %a, pin=%s);" m n k
        Ast.pp_expr alpha pp_mat_ref a pp_mat_ref b Ast.pp_expr beta pp_mat_ref c
        (match pin with Pin_a -> "A" | Pin_b -> "B")
  | Cim_gemm_batched { m; n; k; alpha; beta; batch; pin } ->
      Format.fprintf ppf "polly_cimBlasGemmBatched(m=%d, n=%d, k=%d, alpha=%a, beta=%a, pin=%s,"
        m n k Ast.pp_expr alpha Ast.pp_expr beta
        (match pin with Pin_a -> "A" | Pin_b -> "B");
      List.iter
        (fun (a, b, c) ->
          Format.fprintf ppf "@ {%a, %a, %a}" pp_mat_ref a pp_mat_ref b pp_mat_ref c)
        batch;
      Format.fprintf ppf ");"
  | Cim_im2col { src; dst; kh; kw; oh; ow } ->
      Format.fprintf ppf "polly_cimIm2col(cim_%s, cim_%s, k=%dx%d, out=%dx%d);" dst src kh kw
        oh ow

let rec pp_stmt ppf = function
  | For { var; lo; hi; step; body } ->
      Format.fprintf ppf "@[<v 2>for (int %s = %a; %s < %a; %s += %d) {@,%a@]@,}" var Ast.pp_expr
        lo var Ast.pp_expr hi var step pp_stmts body
  | Assign { lhs; op; rhs } -> Ast.pp_stmt ppf (Ast.Assign { lhs; op; rhs })
  | Decl_scalar { name; typ; init } -> Ast.pp_stmt ppf (Ast.Decl_scalar { name; typ; init })
  | Decl_array { name; dims } -> Ast.pp_stmt ppf (Ast.Decl_array { name; dims })
  | Call call -> pp_call ppf call
  | Roi_begin -> Format.fprintf ppf "__roi_begin();"
  | Roi_end -> Format.fprintf ppf "__roi_end();"

and pp_stmts ppf body = Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf body

let pp_func ppf f =
  Format.fprintf ppf "@[<v 2>// IR for %s@,%s(...) {@,%a@]@,}" f.name f.name pp_stmts f.body

let rec stmt_has_call = function
  | Call _ -> true
  | For { body; _ } -> List.exists stmt_has_call body
  | Assign _ | Decl_scalar _ | Decl_array _ | Roi_begin | Roi_end -> false

let contains_cim_calls f = List.exists stmt_has_call f.body
