module Ast = Tdo_lang.Ast

(* Canonicalise update idioms so later pattern matching sees one form:
     X = X + e   ->  X += e        X = e + X  ->  X += e
     X = X - e   ->  X -= e
     X = X * e   ->  X *= e        X = e * X  ->  X *= e
   where X is the (array) destination itself. *)
let canonicalise_assign (lhs : Ast.lvalue) op rhs =
  let is_self = function
    | Ast.Index (base, indices) ->
        String.equal base lhs.Ast.base
        && List.length indices = List.length lhs.Ast.indices
        && List.for_all2 Ast.expr_equal indices lhs.Ast.indices
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _ | Ast.Binop _ | Ast.Neg _ -> false
  in
  match (op, rhs) with
  | Ast.Set, Ast.Binop (Ast.Add, x, e) when is_self x -> (Ast.Add_assign, e)
  | Ast.Set, Ast.Binop (Ast.Add, e, x) when is_self x -> (Ast.Add_assign, e)
  | Ast.Set, Ast.Binop (Ast.Sub, x, e) when is_self x -> (Ast.Sub_assign, e)
  | Ast.Set, Ast.Binop (Ast.Mul, x, e) when is_self x -> (Ast.Mul_assign, e)
  | Ast.Set, Ast.Binop (Ast.Mul, e, x) when is_self x -> (Ast.Mul_assign, e)
  | op, rhs -> (op, rhs)

(* Bare blocks are flattened into the enclosing body: IR bodies are
   plain statement lists. Declarations keep their relative order, so
   scoping is preserved for every program whose bare blocks do not
   shadow names declared later in the same body (the type checker has
   already validated the source with proper scopes). *)
let rec lower_stmt (stmt : Ast.stmt) : Ir.stmt list =
  match stmt with
  | Ast.For { var; lo; hi; step; body } ->
      [ Ir.For { var; lo; hi; step; body = lower_body body } ]
  | Ast.Assign { lhs; op; rhs } ->
      let op, rhs = if lhs.Ast.indices <> [] then canonicalise_assign lhs op rhs else (op, rhs) in
      [ Ir.Assign { lhs; op; rhs } ]
  | Ast.Decl_scalar { name; typ; init } -> [ Ir.Decl_scalar { name; typ; init } ]
  | Ast.Decl_array { name; dims } -> [ Ir.Decl_array { name; dims } ]
  | Ast.Block body -> lower_body body

and lower_body body = List.concat_map lower_stmt body

let func (f : Ast.func) =
  Tdo_lang.Typecheck.check_func f;
  {
    Ir.name = f.Ast.fname;
    params = f.Ast.params;
    body = (Ir.Roi_begin :: lower_body f.Ast.body) @ [ Ir.Roi_end ];
  }
