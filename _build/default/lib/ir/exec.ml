module Ast = Tdo_lang.Ast
module Interp = Tdo_lang.Interp
module Sim = Tdo_sim
module Platform = Tdo_runtime.Platform
module Api = Tdo_runtime.Api
module Regs = Tdo_cimacc.Context_regs

type metrics = {
  roi_instructions : int;
  roi_cycles : int;
  roi_time_ps : int;
  used_cim : bool;
  cim_launches : int;
}

exception Exec_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

type array_info = { base : int; dims : int list }

type slot = Sint of int ref | Sfloat of float ref | Sarray of array_info

type state = {
  platform : Platform.t;
  cpu : Sim.Cpu.t;
  mutable heap : int;
  mutable api : Api.t option;
  dev : (string, Api.buffer) Hashtbl.t;
}

let heap_base = 0x0100_0000

let alloc_array st dims =
  let bytes = 4 * List.fold_left ( * ) 1 dims in
  let base = st.heap in
  st.heap <- (st.heap + bytes + 63) / 64 * 64;
  { base; dims }

let issue st ?addr cls = Sim.Cpu.issue st.cpu ?addr cls

(* ---------- expression evaluation with instruction charging ---------- *)

type value = Vi of int | Vf of float

let as_f = function Vi n -> float_of_int n | Vf f -> f

let as_i what = function
  | Vi n -> n
  | Vf _ -> fail "%s: expected an integer value" what

let lookup env name =
  match List.assoc_opt name env with
  | Some s -> s
  | None -> fail "unbound identifier '%s'" name

let element_address st env info indices =
  let idxs =
    List.map
      (fun e ->
        match e with
        | Vi n -> n
        | Vf _ -> fail "non-integer subscript")
      indices
  in
  let flat =
    List.fold_left2
      (fun acc idx dim ->
        if idx < 0 || idx >= dim then fail "index %d out of bound %d" idx dim;
        issue st Sim.Cpu.Int_alu;
        (* mul + add of the row-major address computation *)
        (acc * dim) + idx)
      0 idxs info.dims
  in
  ignore env;
  info.base + (4 * flat)

let rec eval st env (e : Ast.expr) : value =
  match e with
  | Ast.Int_lit n -> Vi n
  | Ast.Float_lit f -> Vf f
  | Ast.Var name -> (
      match lookup env name with
      | Sint r -> Vi !r
      | Sfloat r -> Vf !r
      | Sarray _ -> fail "array '%s' used as a scalar" name)
  | Ast.Index (name, indices) -> (
      match lookup env name with
      | Sarray info ->
          let idx_values = List.map (eval st env) indices in
          let addr = element_address st env info idx_values in
          issue st ~addr Sim.Cpu.Load;
          Vf (Sim.Memory.read_f32 st.platform.Platform.memory addr)
      | Sint _ | Sfloat _ -> fail "scalar '%s' indexed" name)
  | Ast.Binop (op, a, b) -> (
      let va = eval st env a and vb = eval st env b in
      match (va, vb) with
      | Vi x, Vi y ->
          issue st Sim.Cpu.Int_alu;
          Vi
            (match op with
            | Ast.Add -> x + y
            | Ast.Sub -> x - y
            | Ast.Mul -> x * y
            | Ast.Div ->
                if y = 0 then fail "integer division by zero";
                x / y)
      | _ ->
          let x = as_f va and y = as_f vb in
          let cls =
            match op with
            | Ast.Add | Ast.Sub -> Sim.Cpu.Fp_add
            | Ast.Mul -> Sim.Cpu.Fp_mul
            | Ast.Div -> Sim.Cpu.Fp_div
          in
          issue st cls;
          Vf
            (match op with
            | Ast.Add -> x +. y
            | Ast.Sub -> x -. y
            | Ast.Mul -> x *. y
            | Ast.Div -> x /. y))
  | Ast.Neg e -> (
      match eval st env e with
      | Vi n ->
          issue st Sim.Cpu.Int_alu;
          Vi (-n)
      | Vf f ->
          issue st Sim.Cpu.Fp_add;
          Vf (-.f))

let eval_int st env what e = as_i what (eval st env e)

(* The += x*y idiom retires as one fused multiply-accumulate on the A7's
   VFP, so charge Fp_mac instead of Fp_mul-then-Fp_add. *)
let eval_rhs_for_accumulate st env (rhs : Ast.expr) =
  match rhs with
  | Ast.Binop (Ast.Mul, a, b) ->
      let va = eval st env a and vb = eval st env b in
      (match (va, vb) with
      | Vi _, Vi _ -> issue st Sim.Cpu.Int_alu
      | _ -> issue st Sim.Cpu.Fp_mac);
      (va, vb, true)
  | _ -> (eval st env rhs, Vi 0, false)

(* ---------- runtime-call support ---------- *)

let require_api st =
  match st.api with
  | Some api -> api
  | None -> fail "CIM runtime used before polly_cimInit"

let array_info env name =
  match lookup env name with
  | Sarray info -> info
  | Sint _ | Sfloat _ -> fail "'%s' is not an array" name

let array_shape_2d info =
  match info.dims with
  | [ rows; cols ] -> (rows, cols)
  | [ n ] -> (n, 1)
  | _ -> fail "device arrays must have rank 1 or 2"

let dev_buffer st name =
  match Hashtbl.find_opt st.dev name with
  | Some buf -> buf
  | None -> fail "array '%s' is not on the device (missing polly_cimMalloc)" name

let host_matrix st env name =
  (* charged element loads: the copy loop runs on the host *)
  let info = array_info env name in
  let rows, cols = array_shape_2d info in
  Tdo_linalg.Mat.init ~rows ~cols ~f:(fun i j ->
      let addr = info.base + (4 * ((i * cols) + j)) in
      issue st Sim.Cpu.Int_alu;
      issue st ~addr Sim.Cpu.Load;
      Sim.Memory.read_f32 st.platform.Platform.memory addr)

let store_host_matrix st env name m =
  let info = array_info env name in
  let rows, cols = array_shape_2d info in
  if Tdo_linalg.Mat.rows m <> rows || Tdo_linalg.Mat.cols m <> cols then
    fail "polly_cimDevToHost: shape mismatch for '%s'" name;
  Tdo_linalg.Mat.iteri
    ~f:(fun i j v ->
      let addr = info.base + (4 * ((i * cols) + j)) in
      issue st Sim.Cpu.Int_alu;
      issue st ~addr Sim.Cpu.Store;
      Sim.Memory.write_f32 st.platform.Platform.memory addr v)
    m

let view_of_ref st env (r : Ir.mat_ref) =
  let info = array_info env r.Ir.array in
  let _, ld = array_shape_2d info in
  let buf = dev_buffer st r.Ir.array in
  let row_off = eval_int st env "mat_ref row offset" r.Ir.row_off in
  let col_off = eval_int st env "mat_ref col offset" r.Ir.col_off in
  issue st Sim.Cpu.Int_alu;
  Api.view ~offset_elems:((row_off * ld) + col_off) ~ld buf

let pin_of = function Ir.Pin_a -> Regs.Pin_a | Ir.Pin_b -> Regs.Pin_b

let exec_call st env (call : Ir.call) =
  match call with
  | Ir.Cim_init -> if st.api = None then st.api <- Some (Api.init st.platform)
  | Ir.Cim_alloc { array } ->
      let api = require_api st in
      let info = array_info env array in
      let rows, cols = array_shape_2d info in
      if Hashtbl.mem st.dev array then fail "polly_cimMalloc: '%s' already allocated" array;
      (match Api.malloc api ~bytes:(4 * rows * cols) with
      | Error reason -> fail "polly_cimMalloc(%s): %s" array reason
      | Ok buf -> Hashtbl.add st.dev array buf)
  | Ir.Cim_h2d { array } ->
      let api = require_api st in
      let info = array_info env array in
      let _, ld = array_shape_2d info in
      let buf = dev_buffer st array in
      Api.host_to_dev api ~src:(host_matrix st env array) ~dst:(Api.view ~ld buf)
  | Ir.Cim_d2h { array } ->
      let api = require_api st in
      let info = array_info env array in
      let rows, cols = array_shape_2d info in
      let buf = dev_buffer st array in
      let m = Api.dev_to_host api ~src:(Api.view ~ld:cols buf) ~rows ~cols in
      store_host_matrix st env array m
  | Ir.Cim_free { array } ->
      let api = require_api st in
      Api.free api (dev_buffer st array);
      Hashtbl.remove st.dev array
  | Ir.Cim_gemm { m; n; k; alpha; beta; a; b; c; pin } ->
      let api = require_api st in
      if c.Ir.trans then fail "polly_cimBlasSGemm: transposed C is not supported";
      let alpha = as_f (eval st env alpha) and beta = as_f (eval st env beta) in
      let va = view_of_ref st env a in
      let vb = view_of_ref st env b in
      let vc = view_of_ref st env c in
      (match
         Api.sgemm api ~trans_a:a.Ir.trans ~trans_b:b.Ir.trans ~pin:(pin_of pin) ~m ~n ~k ~alpha
           ~a:va ~b:vb ~beta ~c:vc ()
       with
      | Ok () -> ()
      | Error reason -> fail "polly_cimBlasSGemm: %s" reason)
  | Ir.Cim_gemm_batched { m; n; k; alpha; beta; batch; pin } ->
      let api = require_api st in
      let alpha = as_f (eval st env alpha) and beta = as_f (eval st env beta) in
      let trans_a, trans_b =
        match batch with
        | (a, b, _) :: _ -> (a.Ir.trans, b.Ir.trans)
        | [] -> fail "polly_cimBlasGemmBatched: empty batch"
      in
      let batch =
        List.map
          (fun (a, b, c) -> (view_of_ref st env a, view_of_ref st env b, view_of_ref st env c))
          batch
      in
      (match
         Api.gemm_batched api ~trans_a ~trans_b ~pin:(pin_of pin) ~m ~n ~k ~alpha ~beta ~batch
           ()
       with
      | Ok () -> ()
      | Error reason -> fail "polly_cimBlasGemmBatched: %s" reason)
  | Ir.Cim_im2col { src; dst; kh; kw; oh; ow } ->
      let api = require_api st in
      let src_info = array_info env src in
      let src_rows, src_cols = array_shape_2d src_info in
      let dst_info = array_info env dst in
      let _, dst_ld = array_shape_2d dst_info in
      let src_buf = dev_buffer st src and dst_buf = dev_buffer st dst in
      Api.dev_im2col api
        ~src:(Api.view ~ld:src_cols src_buf)
        ~src_rows ~src_cols
        ~dst:(Api.view ~ld:dst_ld dst_buf)
        ~kh ~kw ~oh ~ow

(* ---------- statements ---------- *)

let apply_op op old rhs =
  match op with
  | Ast.Set -> rhs
  | Ast.Add_assign -> old +. rhs
  | Ast.Sub_assign -> old -. rhs
  | Ast.Mul_assign -> old *. rhs

let rec exec_stmt st env (stmt : Ir.stmt) =
  match stmt with
  | Ir.For { var; lo; hi; step; body } ->
      let lo = eval_int st env "loop bound" lo and hi = eval_int st env "loop bound" hi in
      let counter = ref lo in
      let env = (var, Sint counter) :: env in
      while !counter < hi do
        exec_body st env body;
        (* increment + back-edge test *)
        issue st Sim.Cpu.Int_alu;
        issue st Sim.Cpu.Branch;
        counter := !counter + step
      done
  | Ir.Assign { lhs; op; rhs } -> (
      match (lookup env lhs.Ast.base, lhs.Ast.indices) with
      | Sarray info, indices ->
          let idx_values = List.map (eval st env) indices in
          let addr = element_address st env info idx_values in
          let rhs_value =
            match op with
            | Ast.Add_assign -> (
                match eval_rhs_for_accumulate st env rhs with
                | va, vb, true -> as_f va *. as_f vb
                | v, _, false -> as_f v)
            | Ast.Set | Ast.Sub_assign | Ast.Mul_assign -> as_f (eval st env rhs)
          in
          let old =
            match op with
            | Ast.Set -> 0.0
            | Ast.Add_assign | Ast.Sub_assign | Ast.Mul_assign ->
                issue st ~addr Sim.Cpu.Load;
                Sim.Memory.read_f32 st.platform.Platform.memory addr
          in
          (match op with
          | Ast.Set | Ast.Add_assign -> () (* Add_assign folded into the MAC *)
          | Ast.Sub_assign | Ast.Mul_assign -> issue st Sim.Cpu.Fp_add);
          issue st ~addr Sim.Cpu.Store;
          Sim.Memory.write_f32 st.platform.Platform.memory addr (apply_op op old rhs_value)
      | Sfloat r, [] ->
          let rhs = as_f (eval st env rhs) in
          if op <> Ast.Set then issue st Sim.Cpu.Fp_add;
          r := apply_op op !r rhs
      | Sint r, [] ->
          let rhs = as_i "integer assignment" (eval st env rhs) in
          issue st Sim.Cpu.Int_alu;
          (match op with
          | Ast.Set -> r := rhs
          | Ast.Add_assign -> r := !r + rhs
          | Ast.Sub_assign -> r := !r - rhs
          | Ast.Mul_assign -> r := !r * rhs)
      | (Sint _ | Sfloat _), _ :: _ -> fail "scalar '%s' indexed" lhs.Ast.base)
  | Ir.Decl_scalar _ | Ir.Decl_array _ ->
      (* bound by exec_body so the binding covers the remaining body *)
      assert false
  | Ir.Call call -> exec_call st env call
  | Ir.Roi_begin -> Sim.Cpu.roi_begin st.cpu
  | Ir.Roi_end -> Sim.Cpu.roi_end st.cpu

and exec_body st env = function
  | [] -> ()
  | Ir.Decl_scalar { name; typ; init } :: rest ->
      let slot =
        match typ with
        | Ast.Tint ->
            Sint (ref (match init with Some e -> eval_int st env "initialiser" e | None -> 0))
        | Ast.Tfloat ->
            Sfloat (ref (match init with Some e -> as_f (eval st env e) | None -> 0.0))
        | Ast.Tvoid -> fail "void declaration"
      in
      exec_body st ((name, slot) :: env) rest
  | Ir.Decl_array { name; dims } :: rest ->
      exec_body st ((name, Sarray (alloc_array st dims)) :: env) rest
  | stmt :: rest ->
      exec_stmt st env stmt;
      exec_body st env rest

(* ---------- staging arguments in and out of simulated memory ---------- *)

let stage_in st (arr : Interp.arr) =
  let info = alloc_array st arr.Interp.dims in
  Array.iteri
    (fun i v -> Sim.Memory.write_f32 st.platform.Platform.memory (info.base + (4 * i)) v)
    arr.Interp.data;
  info

let stage_out st info (arr : Interp.arr) =
  Array.iteri
    (fun i _ ->
      arr.Interp.data.(i) <- Sim.Memory.read_f32 st.platform.Platform.memory (info.base + (4 * i)))
    arr.Interp.data

let run (f : Ir.func) ~platform ~args =
  let st =
    {
      platform;
      cpu = Platform.cpu platform;
      heap = heap_base;
      api = None;
      dev = Hashtbl.create 8;
    }
  in
  let staged = ref [] in
  let bind_param (p : Ast.param) =
    match List.assoc_opt p.Ast.pname args with
    | None -> fail "missing argument '%s'" p.Ast.pname
    | Some (Interp.Vint n) ->
        if p.Ast.dims <> [] then fail "argument '%s' should be an array" p.Ast.pname;
        (p.Ast.pname, Sint (ref n))
    | Some (Interp.Vfloat v) ->
        if p.Ast.dims <> [] then fail "argument '%s' should be an array" p.Ast.pname;
        (p.Ast.pname, Sfloat (ref v))
    | Some (Interp.Varray arr) ->
        if arr.Interp.dims <> p.Ast.dims then
          fail "argument '%s' has mismatched dimensions" p.Ast.pname;
        let info = stage_in st arr in
        staged := (info, arr) :: !staged;
        (p.Ast.pname, Sarray info)
  in
  let env = List.map bind_param f.Ir.params in
  let instructions_before = Sim.Cpu.instructions st.cpu in
  exec_body st env f.Ir.body;
  List.iter (fun (info, arr) -> stage_out st info arr) !staged;
  ignore instructions_before;
  let roi = Sim.Cpu.roi st.cpu in
  let launches =
    match st.api with None -> 0 | Some api -> (Api.counters api).Api.launches
  in
  {
    roi_instructions = roi.Sim.Cpu.roi_instructions;
    roi_cycles = roi.Sim.Cpu.roi_cycles;
    roi_time_ps = roi.Sim.Cpu.roi_time_ps;
    used_cim = st.api <> None;
    cim_launches = launches;
  }
