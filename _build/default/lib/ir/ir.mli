(** Mid-level intermediate representation.

    The IR keeps the loop structure of the source first-class (the
    information Polly recovers from LLVM-IR) and adds what the source
    language does not have: region-of-interest markers and calls into
    the CIM runtime library — the [polly_cim*] calls of Listing 1 that
    the offload pass inserts. Expressions are shared with the AST. *)

module Ast = Tdo_lang.Ast

type pin = Pin_a | Pin_b

type mat_ref = {
  array : string;  (** host array the operand lives in *)
  row_off : Ast.expr;  (** physical element offsets into that array *)
  col_off : Ast.expr;
  rows : int;  (** operand extent (constant at compile time) *)
  cols : int;
  trans : bool;  (** operand is op(M) = M^T *)
}

and call =
  | Cim_init
  | Cim_alloc of { array : string }
  | Cim_h2d of { array : string }
  | Cim_d2h of { array : string }
  | Cim_free of { array : string }
  | Cim_gemm of {
      m : int;
      n : int;
      k : int;
      alpha : Ast.expr;
      beta : Ast.expr;
      a : mat_ref;
      b : mat_ref;
      c : mat_ref;
      pin : pin;
    }
  | Cim_gemm_batched of {
      m : int;
      n : int;
      k : int;
      alpha : Ast.expr;
      beta : Ast.expr;
      batch : (mat_ref * mat_ref * mat_ref) list;
      pin : pin;
    }
  | Cim_im2col of { src : string; dst : string; kh : int; kw : int; oh : int; ow : int }
      (** device-side patch gathering: [dst(i*ow+j, p*kw+q) = src(i+p, j+q)] *)

type stmt =
  | For of { var : string; lo : Ast.expr; hi : Ast.expr; step : int; body : stmt list }
  | Assign of { lhs : Ast.lvalue; op : Ast.assign_op; rhs : Ast.expr }
  | Decl_scalar of { name : string; typ : Ast.typ; init : Ast.expr option }
  | Decl_array of { name : string; dims : int list }
  | Call of call
  | Roi_begin
  | Roi_end

type func = { name : string; params : Ast.param list; body : stmt list }

val mat_ref_whole : array:string -> rows:int -> cols:int -> ?trans:bool -> unit -> mat_ref
(** Reference covering a whole 2-D array (zero offsets). *)

val pp_stmt : Format.formatter -> stmt -> unit
val pp_func : Format.formatter -> func -> unit
(** Pretty-prints runtime calls with their [polly_cim*] names, so the
    output of the offload pass reads like Listing 1 of the paper. *)

val contains_cim_calls : func -> bool
