module Prng = Tdo_util.Prng

type t = { rows : int; cols : int; data : float array }

let check_dims rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat: dimensions must be positive"

let create ~rows ~cols =
  check_dims rows cols;
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init ~rows ~cols ~f =
  check_dims rows cols;
  let data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) in
  { rows; cols; data }

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Mat.of_arrays: empty";
  let cols = Array.length a.(0) in
  if cols = 0 then invalid_arg "Mat.of_arrays: empty row";
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged input")
    a;
  init ~rows ~cols ~f:(fun i j -> a.(i).(j))

let rows m = m.rows
let cols m = m.cols

let index m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg (Printf.sprintf "Mat: index (%d,%d) out of %dx%d" i j m.rows m.cols);
  (i * m.cols) + j

let get m i j = m.data.(index m i j)
let set m i j v = m.data.(index m i j) <- v
let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))
let copy m = { m with data = Array.copy m.data }
let fill m v = Array.fill m.data 0 (Array.length m.data) v
let transpose m = init ~rows:m.cols ~cols:m.rows ~f:(fun i j -> get m j i)
let row m i = Array.init m.cols (fun j -> get m i j)
let col m j = Array.init m.rows (fun i -> get m i j)
let map ~f m = { m with data = Array.map f m.data }

let iteri ~f m =
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      f i j (get m i j)
    done
  done

let max_abs m = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 m.data

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.max_abs_diff: shape mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun k v -> acc := Float.max !acc (Float.abs (v -. b.data.(k)))) a.data;
  !acc

let equal_eps ~eps a b =
  a.rows = b.rows && a.cols = b.cols && max_abs_diff a b <= eps

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%8.3f" (get m i j)
    done;
    Format.fprintf ppf "@]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"

let random g ~rows ~cols ~lo ~hi = init ~rows ~cols ~f:(fun _ _ -> Prng.float_range g ~lo ~hi)
