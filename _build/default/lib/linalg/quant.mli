(** Symmetric fixed-point quantisation.

    The PCM crossbar stores 8-bit signed weights (two 4-bit cells per
    operand, Section IV of the paper); inputs are driven as 8-bit DAC
    levels. This module converts between [float] values and integer
    codes with a per-tensor scale, and bounds the quantisation error so
    tests can assert crossbar results against the float reference. *)

type scheme = { bits : int; scale : float }
(** [bits]-bit signed codes in [\[-2^(bits-1), 2^(bits-1)-1\]];
    [value ~= code *. scale]. *)

val scheme_for : bits:int -> max_abs:float -> scheme
(** Choose the scale so that [max_abs] maps to the largest positive
    code. [max_abs = 0] yields scale 1 (all codes 0). Requires
    [2 <= bits <= 16]. *)

val quantize : scheme -> float -> int
(** Round-to-nearest, saturating at the code range. *)

val dequantize : scheme -> int -> float

val quantize_mat : scheme -> Mat.t -> int array array
val dequantize_mat : scheme -> int array array -> Mat.t

val max_code : scheme -> int
val min_code : scheme -> int

val quantization_error_bound : scheme -> float
(** Worst-case absolute error for one in-range value: [scale /. 2]. *)

val split_nibbles : int -> int * int
(** [split_nibbles code] for an 8-bit signed code returns
    [(msb, lsb)] with [code = msb*16 + lsb], [lsb] in [\[0,15\]]. Used
    to program a pair of 4-bit PCM columns. *)

val combine_nibbles : msb:int -> lsb:int -> int
(** Inverse of [split_nibbles]. *)
