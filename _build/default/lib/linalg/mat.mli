(** Dense row-major matrices of [float].

    Used by the reference BLAS implementations, by the PCM crossbar
    model (as the functional view of the programmed conductances), and
    by the tests to validate offloaded results against host results. *)

module Prng = Tdo_util.Prng

type t

val create : rows:int -> cols:int -> t
(** Zero-filled matrix. Dimensions must be strictly positive. *)

val init : rows:int -> cols:int -> f:(int -> int -> float) -> t
(** [init ~rows ~cols ~f] where [f i j] gives the element at row [i],
    column [j]. *)

val of_arrays : float array array -> t
(** Copies a rectangular array-of-rows. Raises [Invalid_argument] on a
    ragged input or an empty one. *)

val to_arrays : t -> float array array

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
(** [get m i j]; bounds-checked. *)

val set : t -> int -> int -> float -> unit

val copy : t -> t
val fill : t -> float -> unit
val transpose : t -> t

val row : t -> int -> float array
(** Copy of row [i]. *)

val col : t -> int -> float array
(** Copy of column [j]. *)

val map : f:(float -> float) -> t -> t
val iteri : f:(int -> int -> float -> unit) -> t -> unit

val max_abs : t -> float
(** Largest absolute element, 0 for the all-zero matrix. *)

val max_abs_diff : t -> t -> float
(** Largest elementwise absolute difference. Raises [Invalid_argument]
    on shape mismatch. *)

val equal_eps : eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit

val random : Prng.t -> rows:int -> cols:int -> lo:float -> hi:float -> t
