(** Reference (host, exact-float) BLAS-like kernels.

    These are the golden models: the CIM crossbar results are validated
    against them modulo quantisation error, and the PolyBench host runs
    compute the same functions. Semantics follow standard BLAS:
    [C <- alpha*op(A)*op(B) + beta*C]. *)

type transpose = No_transpose | Transpose

val gemm :
  ?trans_a:transpose ->
  ?trans_b:transpose ->
  alpha:float ->
  beta:float ->
  a:Mat.t ->
  b:Mat.t ->
  c:Mat.t ->
  unit ->
  unit
(** In-place GEMM on [c]. Raises [Invalid_argument] on shape mismatch. *)

val gemv :
  ?trans_a:transpose ->
  alpha:float ->
  beta:float ->
  a:Mat.t ->
  x:float array ->
  y:float array ->
  unit ->
  unit
(** In-place GEMV on [y]: [y <- alpha*op(A)*x + beta*y]. *)

val gemm_batched :
  alpha:float ->
  beta:float ->
  a:Mat.t list ->
  b:Mat.t list ->
  c:Mat.t list ->
  unit ->
  unit
(** Pointwise batched GEMM (no transposition); the paper's
    [cimBlasGemmBatched] counterpart. Lists must have equal length. *)

val conv2d : input:Mat.t -> kernel:Mat.t -> Mat.t
(** Valid 2-D convolution (no padding, stride 1); output size
    [(rows input - rows kernel + 1) x (cols input - cols kernel + 1)].
    The paper's [conv] benchmark. *)

val dot : float array -> float array -> float
(** Dot product; lengths must match. *)
