type transpose = No_transpose | Transpose

let op_dims trans m =
  match trans with
  | No_transpose -> (Mat.rows m, Mat.cols m)
  | Transpose -> (Mat.cols m, Mat.rows m)

let op_get trans m i j =
  match trans with No_transpose -> Mat.get m i j | Transpose -> Mat.get m j i

let gemm ?(trans_a = No_transpose) ?(trans_b = No_transpose) ~alpha ~beta ~a ~b ~c () =
  let m, k = op_dims trans_a a in
  let k', n = op_dims trans_b b in
  if k <> k' then invalid_arg "Blas_ref.gemm: inner dimensions differ";
  if Mat.rows c <> m || Mat.cols c <> n then invalid_arg "Blas_ref.gemm: C shape mismatch";
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        acc := !acc +. (op_get trans_a a i l *. op_get trans_b b l j)
      done;
      Mat.set c i j ((alpha *. !acc) +. (beta *. Mat.get c i j))
    done
  done

let gemv ?(trans_a = No_transpose) ~alpha ~beta ~a ~x ~y () =
  let m, k = op_dims trans_a a in
  if Array.length x <> k then invalid_arg "Blas_ref.gemv: x length mismatch";
  if Array.length y <> m then invalid_arg "Blas_ref.gemv: y length mismatch";
  for i = 0 to m - 1 do
    let acc = ref 0.0 in
    for l = 0 to k - 1 do
      acc := !acc +. (op_get trans_a a i l *. x.(l))
    done;
    y.(i) <- (alpha *. !acc) +. (beta *. y.(i))
  done

let gemm_batched ~alpha ~beta ~a ~b ~c () =
  let na = List.length a and nb = List.length b and nc = List.length c in
  if na <> nb || nb <> nc then invalid_arg "Blas_ref.gemm_batched: batch sizes differ";
  List.iter2
    (fun a (b, c) -> gemm ~alpha ~beta ~a ~b ~c ())
    a
    (List.combine b c)

let conv2d ~input ~kernel =
  let ir = Mat.rows input and ic = Mat.cols input in
  let kr = Mat.rows kernel and kc = Mat.cols kernel in
  if kr > ir || kc > ic then invalid_arg "Blas_ref.conv2d: kernel larger than input";
  Mat.init ~rows:(ir - kr + 1) ~cols:(ic - kc + 1) ~f:(fun i j ->
      let acc = ref 0.0 in
      for di = 0 to kr - 1 do
        for dj = 0 to kc - 1 do
          acc := !acc +. (Mat.get input (i + di) (j + dj) *. Mat.get kernel di dj)
        done
      done;
      !acc)

let dot x y =
  if Array.length x <> Array.length y then invalid_arg "Blas_ref.dot: length mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. (v *. y.(i))) x;
  !acc
