lib/linalg/blas_ref.ml: Array List Mat
