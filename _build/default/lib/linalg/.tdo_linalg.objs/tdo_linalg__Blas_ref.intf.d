lib/linalg/blas_ref.mli: Mat
