lib/linalg/quant.mli: Mat
