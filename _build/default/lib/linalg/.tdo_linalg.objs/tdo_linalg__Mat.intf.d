lib/linalg/mat.mli: Format Tdo_util
