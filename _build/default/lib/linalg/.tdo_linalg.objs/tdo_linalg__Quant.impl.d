lib/linalg/quant.ml: Array Float Mat
