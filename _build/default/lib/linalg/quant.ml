type scheme = { bits : int; scale : float }

let max_code s = (1 lsl (s.bits - 1)) - 1
let min_code s = -(1 lsl (s.bits - 1))

let scheme_for ~bits ~max_abs =
  if bits < 2 || bits > 16 then invalid_arg "Quant.scheme_for: bits out of range";
  if max_abs < 0.0 then invalid_arg "Quant.scheme_for: negative max_abs";
  let top = float_of_int ((1 lsl (bits - 1)) - 1) in
  let scale = if max_abs = 0.0 then 1.0 else max_abs /. top in
  { bits; scale }

let quantize s v =
  let code = int_of_float (Float.round (v /. s.scale)) in
  let hi = max_code s and lo = min_code s in
  if code > hi then hi else if code < lo then lo else code

let dequantize s code = float_of_int code *. s.scale

let quantize_mat s m =
  Array.init (Mat.rows m) (fun i -> Array.init (Mat.cols m) (fun j -> quantize s (Mat.get m i j)))

let dequantize_mat s codes =
  Mat.init ~rows:(Array.length codes) ~cols:(Array.length codes.(0)) ~f:(fun i j ->
      dequantize s codes.(i).(j))

let quantization_error_bound s = s.scale /. 2.0

let split_nibbles code =
  if code < -128 || code > 127 then invalid_arg "Quant.split_nibbles: not an 8-bit code";
  (* Euclidean split keeps the low nibble non-negative so it maps onto
     an unsigned 4-bit conductance level. *)
  let lsb = ((code mod 16) + 16) mod 16 in
  let msb = (code - lsb) / 16 in
  (msb, lsb)

let combine_nibbles ~msb ~lsb =
  if lsb < 0 || lsb > 15 then invalid_arg "Quant.combine_nibbles: bad low nibble";
  (msb * 16) + lsb
