type align = Left | Right
type column = { header : string; align : align }

let column ?(align = Left) header = { header; align }

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ~columns ~rows =
  let ncols = List.length columns in
  List.iter
    (fun row ->
      if List.length row <> ncols then invalid_arg "Pretty.render: row arity mismatch")
    rows;
  let widths =
    List.mapi
      (fun i c ->
        let cell_width row = String.length (List.nth row i) in
        List.fold_left (fun acc row -> max acc (cell_width row)) (String.length c.header) rows)
      columns
  in
  let buf = Buffer.create 1024 in
  let emit_row cells =
    List.iteri
      (fun i (cell, (col, width)) ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad col.align width cell))
      (List.combine cells (List.combine columns widths));
    Buffer.add_char buf '\n'
  in
  emit_row (List.map (fun c -> c.header) columns);
  let total = List.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ~columns ~rows = print_string (render ~columns ~rows)

let si_float ?(digits = 2) v =
  let abs = Float.abs v in
  let scaled, suffix =
    if abs = 0.0 then (v, "")
    else if abs >= 1e12 then (v /. 1e12, "T")
    else if abs >= 1e9 then (v /. 1e9, "G")
    else if abs >= 1e6 then (v /. 1e6, "M")
    else if abs >= 1e3 then (v /. 1e3, "k")
    else if abs >= 1.0 then (v, "")
    else if abs >= 1e-3 then (v *. 1e3, "m")
    else if abs >= 1e-6 then (v *. 1e6, "u")
    else if abs >= 1e-9 then (v *. 1e9, "n")
    else if abs >= 1e-12 then (v *. 1e12, "p")
    else (v *. 1e15, "f")
  in
  Printf.sprintf "%.*f%s" digits scaled suffix

let fixed ?(digits = 2) v = Printf.sprintf "%.*f" digits v
