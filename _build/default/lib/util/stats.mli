(** Small statistics helpers used by the experiment reports. *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on the empty list. *)

val geomean : float list -> float
(** Geometric mean. All inputs must be strictly positive; raises
    [Invalid_argument] otherwise. The paper reports geomean energy
    improvements (Fig. 6). *)

val stddev : float list -> float
(** Population standard deviation. *)

val minimum : float list -> float
val maximum : float list -> float

val percentile : float list -> p:float -> float
(** [percentile xs ~p] with [p] in [\[0,100\]], linear interpolation on
    the sorted sample. *)

val ratio : float -> float -> float
(** [ratio a b = a /. b], raising [Invalid_argument] when [b = 0.]. *)
