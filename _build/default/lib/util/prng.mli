(** Deterministic pseudo-random number generator (splitmix64).

    All stochastic parts of the simulator draw from an explicit [t] so
    that every experiment is reproducible bit-for-bit from its seed. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator. Two generators created
    with the same seed produce identical streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit draw. *)

val int : t -> bound:int -> int
(** [int g ~bound] draws uniformly in [\[0, bound)]. Requires
    [bound > 0]. *)

val float : t -> bound:float -> float
(** [float g ~bound] draws uniformly in [\[0, bound)]. *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform draw in [\[lo, hi)]. Requires [lo <= hi]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal draw. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
