lib/util/prng.mli:
