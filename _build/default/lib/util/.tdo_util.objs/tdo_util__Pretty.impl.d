lib/util/pretty.ml: Buffer Float List Printf String
