lib/util/pretty.mli:
