lib/util/stats.mli:
