(** Fixed-width text tables for the paper-style reports printed by the
    benchmark harness and the experiment driver. *)

type align = Left | Right

type column = { header : string; align : align }

val column : ?align:align -> string -> column
(** Column with [Left] alignment by default. *)

val render : columns:column list -> rows:string list list -> string
(** Render a table with a header rule. Every row must have exactly as
    many cells as there are columns; raises [Invalid_argument]
    otherwise. *)

val print : columns:column list -> rows:string list list -> unit
(** [render] followed by [print_string]. *)

val si_float : ?digits:int -> float -> string
(** Human-friendly engineering formatting: [si_float 3.2e-9 = "3.20n"],
    [si_float 42e6 = "42.0M"]. Used for energy/time cells. *)

val fixed : ?digits:int -> float -> string
(** Plain fixed-point formatting. *)
