let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | _ :: _ -> ()

let mean xs =
  require_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  require_nonempty "Stats.geomean" xs;
  let add_log acc x =
    if x <= 0.0 then invalid_arg "Stats.geomean: non-positive sample" else acc +. log x
  in
  exp (List.fold_left add_log 0.0 xs /. float_of_int (List.length xs))

let stddev xs =
  require_nonempty "Stats.stddev" xs;
  let m = mean xs in
  let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  sqrt (sq /. float_of_int (List.length xs))

let minimum xs =
  require_nonempty "Stats.minimum" xs;
  List.fold_left Float.min Float.infinity xs

let maximum xs =
  require_nonempty "Stats.maximum" xs;
  List.fold_left Float.max Float.neg_infinity xs

let percentile xs ~p =
  require_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
  end

let ratio a b = if b = 0.0 then invalid_arg "Stats.ratio: zero denominator" else a /. b
