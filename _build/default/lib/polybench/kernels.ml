module Interp = Tdo_lang.Interp
module Mat = Tdo_linalg.Mat
module Prng = Tdo_util.Prng

type kind = Gemm_like | Gemv_like

type benchmark = {
  name : string;
  description : string;
  kind : kind;
  source : n:int -> string;
  macs : n:int -> int;
  make_args : n:int -> seed:int -> (string * Interp.value) list * (unit -> Mat.t list);
}

(* deterministic PolyBench-style data in a quantisation-friendly
   range, rounded to binary32 like any real float array *)
let random_arr g ~dims =
  let arr = Interp.make_array ~dims in
  Array.iteri
    (fun i _ ->
      let v = Prng.float_range g ~lo:(-1.0) ~hi:1.0 in
      arr.Interp.data.(i) <- Int32.float_of_bits (Int32.bits_of_float v))
    arr.Interp.data;
  arr

let zero_arr ~dims = Interp.make_array ~dims

let mat_of_vec (arr : Interp.arr) =
  match arr.Interp.dims with
  | [ n ] -> Mat.init ~rows:n ~cols:1 ~f:(fun i _ -> arr.Interp.data.(i))
  | _ -> Interp.mat_of_arr arr

(* ---------- gemm ---------- *)

let gemm_source ~n =
  Printf.sprintf
    {|
void kernel_gemm(float alpha, float beta, float C[%d][%d], float A[%d][%d], float B[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      C[i][j] *= beta;
      for (int k = 0; k < %d; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
|}
    n n n n n n n n n

let gemm_args ~n ~seed =
  let g = Prng.create ~seed in
  let a = random_arr g ~dims:[ n; n ] in
  let b = random_arr g ~dims:[ n; n ] in
  let c = random_arr g ~dims:[ n; n ] in
  ( [
      ("alpha", Interp.Vfloat 1.5);
      ("beta", Interp.Vfloat 1.2);
      ("C", Interp.Varray c);
      ("A", Interp.Varray a);
      ("B", Interp.Varray b);
    ],
    fun () -> [ Interp.mat_of_arr c ] )

(* ---------- 2mm ---------- *)

let two_mm_source ~n =
  Printf.sprintf
    {|
void kernel_2mm(float alpha, float beta, float tmp[%d][%d], float A[%d][%d], float B[%d][%d],
                float C[%d][%d], float D[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      tmp[i][j] = 0.0;
      for (int k = 0; k < %d; k++)
        tmp[i][j] += alpha * A[i][k] * B[k][j];
    }
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      D[i][j] *= beta;
      for (int k = 0; k < %d; k++)
        D[i][j] += tmp[i][k] * C[k][j];
    }
}
|}
    n n n n n n n n n n n n n n n n

let two_mm_args ~n ~seed =
  let g = Prng.create ~seed in
  let a = random_arr g ~dims:[ n; n ] in
  let b = random_arr g ~dims:[ n; n ] in
  let c = random_arr g ~dims:[ n; n ] in
  let d = random_arr g ~dims:[ n; n ] in
  let tmp = zero_arr ~dims:[ n; n ] in
  ( [
      ("alpha", Interp.Vfloat 1.5);
      ("beta", Interp.Vfloat 1.2);
      ("tmp", Interp.Varray tmp);
      ("A", Interp.Varray a);
      ("B", Interp.Varray b);
      ("C", Interp.Varray c);
      ("D", Interp.Varray d);
    ],
    fun () -> [ Interp.mat_of_arr d ] )

(* ---------- 3mm ---------- *)

let three_mm_source ~n =
  Printf.sprintf
    {|
void kernel_3mm(float E[%d][%d], float A[%d][%d], float B[%d][%d], float F[%d][%d],
                float C[%d][%d], float D[%d][%d], float G[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      E[i][j] = 0.0;
      for (int k = 0; k < %d; k++)
        E[i][j] += A[i][k] * B[k][j];
    }
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      F[i][j] = 0.0;
      for (int k = 0; k < %d; k++)
        F[i][j] += C[i][k] * D[k][j];
    }
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      G[i][j] = 0.0;
      for (int k = 0; k < %d; k++)
        G[i][j] += E[i][k] * F[k][j];
    }
}
|}
    n n n n n n n n n n n n n n n n n n n n n n n

let three_mm_args ~n ~seed =
  let g = Prng.create ~seed in
  let a = random_arr g ~dims:[ n; n ] in
  let b = random_arr g ~dims:[ n; n ] in
  let c = random_arr g ~dims:[ n; n ] in
  let d = random_arr g ~dims:[ n; n ] in
  let e = zero_arr ~dims:[ n; n ] in
  let f = zero_arr ~dims:[ n; n ] in
  let gg = zero_arr ~dims:[ n; n ] in
  ( [
      ("E", Interp.Varray e);
      ("A", Interp.Varray a);
      ("B", Interp.Varray b);
      ("F", Interp.Varray f);
      ("C", Interp.Varray c);
      ("D", Interp.Varray d);
      ("G", Interp.Varray gg);
    ],
    fun () -> [ Interp.mat_of_arr gg ] )

(* ---------- conv ---------- *)

let conv_source ~n =
  let input = n + 2 in
  Printf.sprintf
    {|
void kernel_conv(float out[%d][%d], float img[%d][%d], float w[3][3]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++) {
      out[i][j] = 0.0;
      for (int p = 0; p < 3; p++)
        for (int q = 0; q < 3; q++)
          out[i][j] += w[p][q] * img[i + p][j + q];
    }
}
|}
    n n input input n n

let conv_args ~n ~seed =
  let g = Prng.create ~seed in
  let img = random_arr g ~dims:[ n + 2; n + 2 ] in
  let w = random_arr g ~dims:[ 3; 3 ] in
  let out = zero_arr ~dims:[ n; n ] in
  ( [ ("out", Interp.Varray out); ("img", Interp.Varray img); ("w", Interp.Varray w) ],
    fun () -> [ Interp.mat_of_arr out ] )

(* ---------- gesummv ---------- *)

let gesummv_source ~n =
  Printf.sprintf
    {|
void kernel_gesummv(float alpha, float beta, float A[%d][%d], float B[%d][%d],
                    float tmp[%d], float x[%d], float y[%d]) {
  for (int i = 0; i < %d; i++) {
    tmp[i] = 0.0;
    for (int j = 0; j < %d; j++)
      tmp[i] += A[i][j] * x[j];
  }
  for (int i = 0; i < %d; i++) {
    y[i] = 0.0;
    for (int j = 0; j < %d; j++)
      y[i] += B[i][j] * x[j];
  }
  for (int i = 0; i < %d; i++)
    y[i] = alpha * tmp[i] + beta * y[i];
}
|}
    n n n n n n n n n n n n

let gesummv_args ~n ~seed =
  let g = Prng.create ~seed in
  let a = random_arr g ~dims:[ n; n ] in
  let b = random_arr g ~dims:[ n; n ] in
  let x = random_arr g ~dims:[ n ] in
  let tmp = zero_arr ~dims:[ n ] in
  let y = zero_arr ~dims:[ n ] in
  ( [
      ("alpha", Interp.Vfloat 1.5);
      ("beta", Interp.Vfloat 1.2);
      ("A", Interp.Varray a);
      ("B", Interp.Varray b);
      ("tmp", Interp.Varray tmp);
      ("x", Interp.Varray x);
      ("y", Interp.Varray y);
    ],
    fun () -> [ mat_of_vec y ] )

(* ---------- bicg ---------- *)

let bicg_source ~n =
  Printf.sprintf
    {|
void kernel_bicg(float A[%d][%d], float s[%d], float q[%d], float p[%d], float r[%d]) {
  for (int i = 0; i < %d; i++) {
    s[i] = 0.0;
    for (int j = 0; j < %d; j++)
      s[i] += A[j][i] * r[j];
  }
  for (int i = 0; i < %d; i++) {
    q[i] = 0.0;
    for (int j = 0; j < %d; j++)
      q[i] += A[i][j] * p[j];
  }
}
|}
    n n n n n n n n n n

let bicg_args ~n ~seed =
  let g = Prng.create ~seed in
  let a = random_arr g ~dims:[ n; n ] in
  let p = random_arr g ~dims:[ n ] in
  let r = random_arr g ~dims:[ n ] in
  let s = zero_arr ~dims:[ n ] in
  let q = zero_arr ~dims:[ n ] in
  ( [
      ("A", Interp.Varray a);
      ("s", Interp.Varray s);
      ("q", Interp.Varray q);
      ("p", Interp.Varray p);
      ("r", Interp.Varray r);
    ],
    fun () -> [ mat_of_vec s; mat_of_vec q ] )

(* ---------- mvt ---------- *)

let mvt_source ~n =
  Printf.sprintf
    {|
void kernel_mvt(float x1[%d], float x2[%d], float y1[%d], float y2[%d], float A[%d][%d]) {
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++)
      x1[i] += A[i][j] * y1[j];
  for (int i = 0; i < %d; i++)
    for (int j = 0; j < %d; j++)
      x2[i] += A[j][i] * y2[j];
}
|}
    n n n n n n n n n n

let mvt_args ~n ~seed =
  let g = Prng.create ~seed in
  let a = random_arr g ~dims:[ n; n ] in
  let y1 = random_arr g ~dims:[ n ] in
  let y2 = random_arr g ~dims:[ n ] in
  let x1 = random_arr g ~dims:[ n ] in
  let x2 = random_arr g ~dims:[ n ] in
  ( [
      ("x1", Interp.Varray x1);
      ("x2", Interp.Varray x2);
      ("y1", Interp.Varray y1);
      ("y2", Interp.Varray y2);
      ("A", Interp.Varray a);
    ],
    fun () -> [ mat_of_vec x1; mat_of_vec x2 ] )

let all =
  [
    {
      name = "2mm";
      description = "D = alpha*A*B*C + beta*D (two matrix products)";
      kind = Gemm_like;
      source = two_mm_source;
      macs = (fun ~n -> 2 * n * n * n);
      make_args = two_mm_args;
    };
    {
      name = "3mm";
      description = "G = (A*B) * (C*D) (three matrix products)";
      kind = Gemm_like;
      source = three_mm_source;
      macs = (fun ~n -> 3 * n * n * n);
      make_args = three_mm_args;
    };
    {
      name = "gemm";
      description = "C = alpha*A*B + beta*C";
      kind = Gemm_like;
      source = gemm_source;
      macs = (fun ~n -> n * n * n);
      make_args = gemm_args;
    };
    {
      name = "conv";
      description = "3x3 valid 2-D convolution";
      kind = Gemm_like;
      source = conv_source;
      macs = (fun ~n -> 9 * n * n);
      make_args = conv_args;
    };
    {
      name = "gesummv";
      description = "y = alpha*A*x + beta*B*x";
      kind = Gemv_like;
      source = gesummv_source;
      macs = (fun ~n -> 2 * n * n);
      make_args = gesummv_args;
    };
    {
      name = "bicg";
      description = "s = A^T*r; q = A*p";
      kind = Gemv_like;
      source = bicg_source;
      macs = (fun ~n -> 2 * n * n);
      make_args = bicg_args;
    };
    {
      name = "mvt";
      description = "x1 += A*y1; x2 += A^T*y2";
      kind = Gemv_like;
      source = mvt_source;
      macs = (fun ~n -> 2 * n * n);
      make_args = mvt_args;
    };
  ]

let names = List.map (fun b -> b.name) all

let find name =
  match List.find_opt (fun b -> String.equal b.name name) all with
  | Some b -> Ok b
  | None ->
      Error
        (Printf.sprintf "unknown kernel %S (available: %s)" name (String.concat ", " names))
