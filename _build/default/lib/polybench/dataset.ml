type t = Mini | Small | Medium | Large

let n = function Mini -> 16 | Small -> 32 | Medium -> 64 | Large -> 96

let to_string = function
  | Mini -> "mini"
  | Small -> "small"
  | Medium -> "medium"
  | Large -> "large"

let of_string = function
  | "mini" -> Ok Mini
  | "small" -> Ok Small
  | "medium" -> Ok Medium
  | "large" -> Ok Large
  | other -> Error (Printf.sprintf "unknown dataset %S (mini|small|medium|large)" other)

let all = [ Mini; Small; Medium; Large ]
