(** Problem-size presets, PolyBench style. Sizes are chosen so a full
    Fig. 6 sweep simulates in seconds-to-minutes; the paper's
    qualitative results (who wins, roughly by how much) are stable
    across them. *)

type t = Mini | Small | Medium | Large

val n : t -> int
(** Square-matrix extent: 16 / 32 / 64 / 96. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val all : t list
