lib/polybench/dataset.mli:
