lib/polybench/kernels.mli: Tdo_lang Tdo_linalg
