lib/polybench/dataset.ml: Printf
