lib/polybench/kernels.ml: Array Int32 List Printf String Tdo_lang Tdo_linalg Tdo_util
