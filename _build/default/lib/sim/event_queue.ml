module Key = struct
  type t = Time_base.ps * int

  let compare (t1, s1) (t2, s2) =
    match compare t1 t2 with 0 -> compare s1 s2 | c -> c
end

module Pending = Map.Make (Key)

type event = { name : string; callback : unit -> unit }

type t = {
  mutable now : Time_base.ps;
  mutable seq : int;
  mutable pending : event Pending.t;
  mutable executed : int;
}

let create () = { now = 0; seq = 0; pending = Pending.empty; executed = 0 }
let now t = t.now

let schedule_at t ~time ~name callback =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Event_queue.schedule_at: %s scheduled at %d before now=%d" name time t.now);
  t.seq <- t.seq + 1;
  t.pending <- Pending.add (time, t.seq) { name; callback } t.pending

let schedule t ~delay ~name callback =
  if delay < 0 then invalid_arg "Event_queue.schedule: negative delay";
  schedule_at t ~time:(t.now + delay) ~name callback

let run_next t =
  match Pending.min_binding_opt t.pending with
  | None -> false
  | Some (((time, _) as key), event) ->
      t.pending <- Pending.remove key t.pending;
      t.now <- time;
      t.executed <- t.executed + 1;
      event.callback ();
      true

let run_until t ~time =
  let rec loop () =
    match Pending.min_binding_opt t.pending with
    | Some ((event_time, _), _) when event_time <= time ->
        ignore (run_next t);
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  if time > t.now then t.now <- time

let run_all t = while run_next t do () done

let advance_to t ~time = if time > t.now then t.now <- time
let pending t = Pending.cardinal t.pending
let executed t = t.executed
