(** Simulated time.

    Like gem5, the simulator keeps one integer tick clock; one tick is
    one picosecond. Components convert between their clock domain and
    ticks with these helpers. *)

type ps = int
(** Picoseconds. *)

val ps_per_ns : int
val ps_per_us : int
val ps_per_ms : int
val ps_per_s : int

val period_ps : freq_hz:float -> ps
(** Clock period (rounded to the nearest picosecond). Raises
    [Invalid_argument] on a non-positive frequency. *)

val cycles_to_ps : freq_hz:float -> int -> ps
val ps_to_cycles : freq_hz:float -> ps -> int
(** Rounds up: a partial period still occupies a full cycle. *)

val seconds_of_ps : ps -> float
val ps_of_seconds : float -> ps
