type config = { name : string; bytes_per_ps : float; arbitration_ps : Time_base.ps }

let default_config =
  { name = "sysbus"; bytes_per_ps = 4.8e9 /. 1e12; arbitration_ps = 10 * Time_base.ps_per_ns }

type t = {
  config : config;
  traffic : (string, int) Hashtbl.t;
  mutable total_bytes : int;
  mutable transfers : int;
}

let create ?(config = default_config) () =
  if config.bytes_per_ps <= 0.0 then invalid_arg "Bus.create: bandwidth must be positive";
  { config; traffic = Hashtbl.create 8; total_bytes = 0; transfers = 0 }

let config t = t.config

let transfer t ~master ~bytes =
  if bytes < 0 then invalid_arg "Bus.transfer: negative size";
  let previous = Option.value ~default:0 (Hashtbl.find_opt t.traffic master) in
  Hashtbl.replace t.traffic master (previous + bytes);
  t.total_bytes <- t.total_bytes + bytes;
  t.transfers <- t.transfers + 1;
  t.config.arbitration_ps
  + int_of_float (Float.round (float_of_int bytes /. t.config.bytes_per_ps))

let traffic t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.traffic []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let total_bytes t = t.total_bytes
let transfers t = t.transfers
