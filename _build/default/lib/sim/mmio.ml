type handler = { read : offset:int -> int32; write : offset:int -> int32 -> unit }

type mapping = { base : int; size : int; handler : handler }

type t = { mutable mappings : mapping list; mutable reads : int; mutable writes : int }

let create () = { mappings = []; reads = 0; writes = 0 }

let overlaps a b = a.base < b.base + b.size && b.base < a.base + a.size

let map t ~base ~size handler =
  if size <= 0 then invalid_arg "Mmio.map: empty range";
  if base < 0 then invalid_arg "Mmio.map: negative base";
  let candidate = { base; size; handler } in
  if List.exists (overlaps candidate) t.mappings then
    invalid_arg (Printf.sprintf "Mmio.map: range [0x%x, 0x%x) overlaps" base (base + size));
  t.mappings <- candidate :: t.mappings

let find t addr =
  match List.find_opt (fun m -> addr >= m.base && addr < m.base + m.size) t.mappings with
  | Some m -> m
  | None -> failwith (Printf.sprintf "Mmio: unmapped address 0x%x" addr)

let read t ~addr =
  let m = find t addr in
  t.reads <- t.reads + 1;
  m.handler.read ~offset:(addr - m.base)

let write t ~addr v =
  let m = find t addr in
  t.writes <- t.writes + 1;
  m.handler.write ~offset:(addr - m.base) v

let reads t = t.reads
let writes t = t.writes

let mapped_ranges t =
  List.map (fun m -> (m.base, m.size)) t.mappings |> List.sort compare
