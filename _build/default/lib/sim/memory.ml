type config = {
  size_bytes : int;
  access_latency_ps : Time_base.ps;
  bytes_per_ps : float;
}

let default_config =
  {
    size_bytes = 2 * 1024 * 1024 * 1024;
    access_latency_ps = 50 * Time_base.ps_per_ns;
    bytes_per_ps = 7.46e9 /. 1e12;
  }

let chunk_bits = 16
let chunk_size = 1 lsl chunk_bits

type t = {
  config : config;
  chunks : (int, Bytes.t) Hashtbl.t;
  mutable reads : int;
  mutable writes : int;
}

let create ?(config = default_config) () =
  if config.size_bytes <= 0 then invalid_arg "Memory.create: size must be positive";
  { config; chunks = Hashtbl.create 64; reads = 0; writes = 0 }

let config t = t.config

let check_range t addr len =
  if addr < 0 || len < 0 || addr + len > t.config.size_bytes then
    invalid_arg (Printf.sprintf "Memory: access [%d, %d) out of range" addr (addr + len))

let chunk t idx =
  match Hashtbl.find_opt t.chunks idx with
  | Some c -> c
  | None ->
      let c = Bytes.make chunk_size '\000' in
      Hashtbl.add t.chunks idx c;
      c

let read_u8 t addr =
  check_range t addr 1;
  t.reads <- t.reads + 1;
  Char.code (Bytes.get (chunk t (addr lsr chunk_bits)) (addr land (chunk_size - 1)))

let write_u8 t addr v =
  check_range t addr 1;
  if v < 0 || v > 255 then invalid_arg "Memory.write_u8: byte out of range";
  t.writes <- t.writes + 1;
  Bytes.set (chunk t (addr lsr chunk_bits)) (addr land (chunk_size - 1)) (Char.chr v)

let read_bytes t addr len =
  check_range t addr len;
  t.reads <- t.reads + len;
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    let a = addr + i in
    Bytes.set out i (Bytes.get (chunk t (a lsr chunk_bits)) (a land (chunk_size - 1)))
  done;
  out

let write_bytes t addr data =
  let len = Bytes.length data in
  check_range t addr len;
  t.writes <- t.writes + len;
  for i = 0 to len - 1 do
    let a = addr + i in
    Bytes.set (chunk t (a lsr chunk_bits)) (a land (chunk_size - 1)) (Bytes.get data i)
  done

let read_i32 t addr =
  let b = read_bytes t addr 4 in
  Bytes.get_int32_le b 0

let write_i32 t addr v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 v;
  write_bytes t addr b

let read_f32 t addr = Int32.float_of_bits (read_i32 t addr)
let write_f32 t addr v = write_i32 t addr (Int32.bits_of_float v)

let burst_latency t ~bytes =
  if bytes < 0 then invalid_arg "Memory.burst_latency: negative size";
  t.config.access_latency_ps
  + int_of_float (Float.round (float_of_int bytes /. t.config.bytes_per_ps))

let reads t = t.reads
let writes t = t.writes
