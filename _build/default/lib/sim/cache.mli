(** Set-associative write-back, write-allocate cache with LRU
    replacement.

    The cache is a {e timing and statistics} model: data always lives in
    {!Memory} (the simulator is functionally coherent by construction),
    and the cache decides how long each access takes and how much
    traffic reaches the next level. This mirrors how the paper uses
    gem5: what matters for the evaluation is run time, energy and the
    flush cost the driver pays before each offload. *)

type op = Read | Write

type config = {
  name : string;
  size_bytes : int;
  line_bytes : int;  (** power of two *)
  ways : int;
  hit_latency_ps : Time_base.ps;
}

val l1d_arm_a7 : config
(** 32 KB, 64-byte lines, 4-way, 2 ns. *)

val l2_arm_a7 : config
(** 2 MB shared, 64-byte lines, 8-way, 10 ns. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  flushes : int;
  flushed_bytes : int;
}

type t

val create :
  ?config:config ->
  next:(op -> addr:int -> bytes:int -> Time_base.ps) ->
  unit ->
  t
(** [next] is the access function of the next level (another cache or
    main memory) and returns that level's latency. *)

val config : t -> config

val access : t -> op -> addr:int -> Time_base.ps
(** Latency of one access at [addr]. A miss fetches the line from the
    next level (and writes back the victim first if dirty). *)

val flush : t -> Time_base.ps
(** Write back every dirty line and invalidate the whole cache; the
    result is the total write-back latency. The CIM driver performs
    this before triggering the accelerator (paper Section II-E). *)

val stats : t -> stats
val reset_stats : t -> unit

val dirty_lines : t -> int
