lib/sim/cpu.mli: Cache Time_base
