lib/sim/cache.mli: Time_base
