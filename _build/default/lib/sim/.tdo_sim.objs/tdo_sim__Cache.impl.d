lib/sim/cache.ml: Array Time_base
