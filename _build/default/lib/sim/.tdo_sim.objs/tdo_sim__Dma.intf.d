lib/sim/dma.mli: Bus Bytes Memory Time_base
