lib/sim/bus.ml: Float Hashtbl List Option Time_base
