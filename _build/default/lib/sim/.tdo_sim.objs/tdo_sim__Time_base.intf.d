lib/sim/time_base.mli:
