lib/sim/memory.ml: Bytes Char Float Hashtbl Int32 Printf Time_base
