lib/sim/memory.mli: Bytes Time_base
