lib/sim/event_queue.ml: Map Printf Time_base
