lib/sim/dma.ml: Bus Bytes Memory Time_base
