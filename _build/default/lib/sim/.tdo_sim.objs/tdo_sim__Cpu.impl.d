lib/sim/cpu.ml: Array Cache Time_base
