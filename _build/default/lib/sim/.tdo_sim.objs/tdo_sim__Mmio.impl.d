lib/sim/mmio.ml: List Printf
