lib/sim/bus.mli: Time_base
