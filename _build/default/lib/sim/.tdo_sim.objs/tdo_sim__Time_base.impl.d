lib/sim/time_base.ml: Float
