lib/sim/mmio.mli:
