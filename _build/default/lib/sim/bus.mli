(** Shared system bus connecting the host, the CIM accelerator's DMA
    and main memory (Fig. 2(a)).

    The model charges an arbitration cost plus a bandwidth term per
    transfer and keeps per-master traffic statistics. *)

type config = {
  name : string;
  bytes_per_ps : float;
  arbitration_ps : Time_base.ps;
}

val default_config : config
(** 64-bit bus at 600 MHz (4.8 GB/s), 10 ns arbitration. *)

type t

val create : ?config:config -> unit -> t
val config : t -> config

val transfer : t -> master:string -> bytes:int -> Time_base.ps
(** Latency of moving [bytes] across the bus on behalf of [master].
    Raises [Invalid_argument] on a negative size. *)

val traffic : t -> (string * int) list
(** Bytes moved per master, sorted by master name. *)

val total_bytes : t -> int
val transfers : t -> int
