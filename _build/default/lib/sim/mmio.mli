(** Port-mapped / memory-mapped IO space.

    Devices (the CIM accelerator's context-register file) register a
    handler for an address range; the CPU-side driver reads and writes
    32-bit words through it. This is the PMIO interface of Section
    II-D. *)

type handler = {
  read : offset:int -> int32;
  write : offset:int -> int32 -> unit;
}

type t

val create : unit -> t

val map : t -> base:int -> size:int -> handler -> unit
(** Register a device at [\[base, base+size)]. Raises
    [Invalid_argument] if the range overlaps an existing mapping or is
    empty. *)

val read : t -> addr:int -> int32
(** Raises [Failure] on an unmapped address. *)

val write : t -> addr:int -> int32 -> unit

val reads : t -> int
val writes : t -> int

val mapped_ranges : t -> (int * int) list
(** [(base, size)] pairs, sorted by base. *)
