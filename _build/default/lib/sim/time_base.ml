type ps = int

let ps_per_ns = 1_000
let ps_per_us = 1_000_000
let ps_per_ms = 1_000_000_000
let ps_per_s = 1_000_000_000_000

let period_ps ~freq_hz =
  if freq_hz <= 0.0 then invalid_arg "Time_base.period_ps: frequency must be positive";
  int_of_float (Float.round (1e12 /. freq_hz))

let cycles_to_ps ~freq_hz n = n * period_ps ~freq_hz

let ps_to_cycles ~freq_hz ps =
  let p = period_ps ~freq_hz in
  (ps + p - 1) / p

let seconds_of_ps ps = float_of_int ps /. 1e12
let ps_of_seconds s = int_of_float (Float.round (s *. 1e12))
