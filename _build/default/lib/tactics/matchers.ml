module St = Tdo_poly.Schedule_tree

type pattern =
  | P_band of string option * pattern
  | P_seq of pattern list
  | P_stmt of string option
  | P_any
  | P_mark of string * pattern

let band ?capture child = P_band (capture, child)
let sequence children = P_seq children
let stmt ?capture () = P_stmt capture
let any = P_any
let mark name child = P_mark (name, child)

type capture = {
  bands : (string * St.band) list;
  stmts : (string * St.stmt_info) list;
}

let empty = { bands = []; stmts = [] }
let find c name = List.assoc name c.bands
let find_stmt c name = List.assoc name c.stmts

let rec matches_at pattern tree capture =
  match (pattern, tree) with
  | P_any, _ -> Some capture
  | P_band (name, child), St.Band (b, subtree) ->
      let capture =
        match name with
        | None -> capture
        | Some n -> { capture with bands = (n, b) :: capture.bands }
      in
      matches_at child subtree capture
  | P_seq patterns, St.Seq children ->
      if List.length patterns <> List.length children then None
      else
        List.fold_left2
          (fun acc p c -> Option.bind acc (matches_at p c))
          (Some capture) patterns children
  | P_stmt name, St.Stmt s ->
      Some
        (match name with
        | None -> capture
        | Some n -> { capture with stmts = (n, s) :: capture.stmts })
  | P_mark (name, child), St.Mark (n, subtree) when String.equal name n ->
      matches_at child subtree capture
  | (P_band _ | P_seq _ | P_stmt _ | P_mark _), _ -> None

let matches pattern tree = matches_at pattern tree empty
