(** The Loop Tactics pass pipeline, as it sits inside Polly in Fig. 4:
    SCoP detection -> schedule-tree matching and rewriting -> AST/IR
    regeneration. *)

val run :
  ?config:Offload.config -> Tdo_ir.Ir.func -> Tdo_ir.Ir.func * Offload.report option
(** [run f] returns the CIM-optimised function. When the function body
    is not a SCoP the input is returned unchanged with [None] (the
    flow silently falls back to the host path, as Polly does). *)
