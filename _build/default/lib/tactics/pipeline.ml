module Scop_detect = Tdo_poly.Scop_detect
module Codegen = Tdo_poly.Codegen

let run ?(config = Offload.default_config) f =
  match Scop_detect.detect_func f with
  | Error _ -> (f, None)
  | Ok tree ->
      let tree, report = Offload.apply config tree in
      (Codegen.func_with_body f tree, Some report)
