module St = Tdo_poly.Schedule_tree
module Affine = Tdo_poly.Affine
module Access = Tdo_poly.Access
module Ast = Tdo_lang.Ast

(* A perfect nest: Band b1 (Band b2 (... (Stmt s))). *)
let rec perfect_nest tree =
  match tree with
  | St.Band (b, child) ->
      Option.map (fun (bands, s) -> (b :: bands, s)) (perfect_nest child)
  | St.Stmt s -> Some ([], s)
  | St.Seq _ | St.Mark _ | St.Code _ -> None

let rectangular (b : St.band) =
  Affine.is_constant b.St.lo <> None && Affine.is_constant b.St.hi <> None

let writes_distinct_cells bands (s : St.stmt_info) =
  List.for_all
    (fun (b : St.band) ->
      List.exists
        (fun idx ->
          Affine.coeff idx b.St.iter = 1
          && Affine.constant idx = 0
          && Affine.vars idx = [ b.St.iter ])
        s.St.write.Access.indices)
    bands

let permutable bands (s : St.stmt_info) =
  List.for_all rectangular bands
  &&
  match s.St.op with
  | Ast.Add_assign | Ast.Sub_assign -> true
  | Ast.Set | Ast.Mul_assign -> writes_distinct_cells bands s

let rec permutations = function
  | [] -> [ [] ]
  | items ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) items in
          List.map (fun perm -> x :: perm) (permutations rest))
        items

let rebuild bands s =
  List.fold_right (fun b child -> St.Band (b, child)) bands (St.Stmt s)

let interchange_candidates tree =
  match perfect_nest tree with
  | Some (bands, s)
    when List.length bands >= 2 && List.length bands <= 4 && permutable bands s ->
      let variants =
        permutations bands
        |> List.filter (fun perm -> perm <> bands)
        |> List.map (fun perm -> rebuild perm s)
      in
      tree :: variants
  | Some _ | None -> [ tree ]

let interchange tree ~outer ~inner =
  match perfect_nest tree with
  | Some (bands, s) when permutable bands s ->
      let rec swap = function
        | (b1 : St.band) :: b2 :: rest
          when String.equal b1.St.iter outer && String.equal b2.St.iter inner ->
            Some (b2 :: b1 :: rest)
        | b :: rest -> Option.map (fun swapped -> b :: swapped) (swap rest)
        | [] -> None
      in
      Option.map (fun bands -> rebuild bands s) (swap bands)
  | Some _ | None -> None
