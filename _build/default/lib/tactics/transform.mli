(** Schedule-tree transformations used to canonicalise kernels before
    pattern matching.

    Real Loop Tactics matches modulo loop permutation: a GEMM written
    with the reduction outermost is still a GEMM. This module
    enumerates the legal loop-interchange variants of a perfect,
    rectangular band nest so the detectors can try each one. *)

module St = Tdo_poly.Schedule_tree

val interchange_candidates : St.t -> St.t list
(** The tree itself first, followed by every distinct legal permutation
    of its perfect band nest (when the tree is one):

    - all bands must have constant (rectangular) bounds;
    - the single statement under the nest must either accumulate
      ([+=]/[-=], floating-point reassociation accepted as in the
      paper's setting), or write a distinct cell per instance (every
      band iterator appears as a plain unit-coefficient subscript of
      the write).

    Non-conforming trees yield just [\[tree\]]. Nests deeper than 4 are
    not permuted (cost guard). *)

val interchange : St.t -> outer:string -> inner:string -> St.t option
(** Swap two adjacent bands of a perfect nest by iterator name; [None]
    when the bands are not adjacent, not found, or the swap is not
    legal under the rule above. *)
