module St = Tdo_poly.Schedule_tree
module Affine = Tdo_poly.Affine
module Access = Tdo_poly.Access
module Ast = Tdo_lang.Ast

type operand = { array : string; trans : bool }

type gemm = {
  c_array : string;
  a : operand;
  b : operand;
  m : int;
  n : int;
  k : int;
  iter_i : string;
  iter_j : string;
  iter_k : string;
  alpha : Ast.expr;
  beta : Ast.expr;
}

type gemv = {
  a : operand;
  x_array : string;
  y_array : string;
  m : int;
  k : int;
  alpha : Ast.expr;
  beta : Ast.expr;
}

type conv = {
  input : string;
  weights : string;
  output : string;
  out_h : int;
  out_w : int;
  ker_h : int;
  ker_w : int;
  alpha : Ast.expr;
  accumulate : bool;
}

type kernel = Kgemm of gemm | Kgemv of gemv | Kconv of conv

let ( let* ) = Option.bind

(* A normalised band: constant extent, zero lower bound, unit step. *)
let band_extent_0 (b : St.band) =
  match (Affine.is_constant b.St.lo, Affine.is_constant b.St.hi, b.St.step) with
  | Some 0, Some hi, 1 when hi > 0 -> Some hi
  | _ -> None

(* Multiplicative factor split of an expression: scalar factors (no
   array reads) and access factors. Fails on anything else. *)
let rec mul_factors (e : Ast.expr) =
  match e with
  | Ast.Binop (Ast.Mul, a, b) -> (
      match (mul_factors a, mul_factors b) with
      | Some fa, Some fb -> Some (fa @ fb)
      | _ -> None)
  | Ast.Index (array, indices) -> Some [ `Access (array, indices) ]
  | Ast.Var _ | Ast.Float_lit _ -> Some [ `Scalar e ]
  | Ast.Int_lit _ | Ast.Binop _ | Ast.Neg _ -> None

let scalar_product = function
  | [] -> Ast.Float_lit 1.0
  | first :: rest -> List.fold_left (fun acc e -> Ast.Binop (Ast.Mul, acc, e)) first rest

let scalars_of factors =
  List.filter_map (function `Scalar e -> Some e | `Access _ -> None) factors

let accesses_of factors =
  List.filter_map
    (function
      | `Access (array, indices) -> Access.of_lvalue { Ast.base = array; indices }
      | `Scalar _ -> None)
    factors

(* Zero-init or beta-style rescale of [target]: returns the beta
   expression. Accepted forms:
     target *= beta            (beta scalar)
     target = 0                (beta 0)
     target = beta * target    (beta scalars)           *)
let beta_of_init (s : St.stmt_info) (target : Access.t) =
  let* () = if Access.equal s.St.write target then Some () else None in
  match s.St.op with
  | Ast.Mul_assign -> (
      match mul_factors s.St.rhs with
      | Some factors when accesses_of factors = [] -> Some (scalar_product (scalars_of factors))
      | _ -> None)
  | Ast.Set -> (
      match s.St.rhs with
      | Ast.Float_lit 0.0 | Ast.Int_lit 0 -> Some (Ast.Float_lit 0.0)
      | rhs -> (
          match mul_factors rhs with
          | Some factors -> (
              match accesses_of factors with
              | [ acc ] when Access.equal acc target ->
                  Some (scalar_product (scalars_of factors))
              | _ -> None)
          | None -> None))
  | Ast.Add_assign | Ast.Sub_assign -> None

(* Signature helper: indices of an access against iterator positions. *)
let signature (a : Access.t) ~iters = Access.index_signature a ~iters

(* ---------- GEMM ---------- *)

let gemm_bodies tree =
  (* band i (band j (seq [init; band k (stmt)])) or band i (band j (band k (stmt))) *)
  match tree with
  | St.Band (bi, St.Band (bj, St.Seq [ St.Stmt init; St.Band (bk, St.Stmt upd) ])) ->
      Some (bi, bj, bk, Some init, upd)
  | St.Band (bi, St.Band (bj, St.Band (bk, St.Stmt upd))) -> Some (bi, bj, bk, None, upd)
  | _ -> None

let match_gemm tree =
  let* bi, bj, bk, init, upd = gemm_bodies tree in
  let* m = band_extent_0 bi in
  let* n = band_extent_0 bj in
  let* k = band_extent_0 bk in
  let iters = [ bi.St.iter; bj.St.iter; bk.St.iter ] in
  let* () = if upd.St.op = Ast.Add_assign then Some () else None in
  let* c_sig = signature upd.St.write ~iters in
  let* () = if c_sig = [ `Iter 0; `Iter 1 ] then Some () else None in
  let* factors = mul_factors upd.St.rhs in
  let accesses = accesses_of factors in
  let* a, b =
    match accesses with
    | [ x; y ] -> (
        let sx = signature x ~iters and sy = signature y ~iters in
        match (sx, sy) with
        | Some sx, Some sy -> (
            let classify access s =
              match s with
              | [ `Iter 0; `Iter 2 ] -> Some (`A { array = access.Access.array; trans = false })
              | [ `Iter 2; `Iter 0 ] -> Some (`A { array = access.Access.array; trans = true })
              | [ `Iter 2; `Iter 1 ] -> Some (`B { array = access.Access.array; trans = false })
              | [ `Iter 1; `Iter 2 ] -> Some (`B { array = access.Access.array; trans = true })
              | _ -> None
            in
            match (classify x sx, classify y sy) with
            | Some (`A a), Some (`B b) | Some (`B b), Some (`A a) -> Some (a, b)
            | _ -> None)
        | _ -> None)
    | _ -> None
  in
  let alpha = scalar_product (scalars_of factors) in
  let* beta =
    match init with
    | None -> Some (Ast.Float_lit 1.0)
    | Some init -> beta_of_init init upd.St.write
  in
  Some
    {
      c_array = upd.St.write.Access.array;
      a;
      b;
      m;
      n;
      k;
      iter_i = bi.St.iter;
      iter_j = bj.St.iter;
      iter_k = bk.St.iter;
      alpha;
      beta;
    }

(* ---------- GEMV ---------- *)

let gemv_bodies tree =
  match tree with
  | St.Band (bi, St.Seq [ St.Stmt init; St.Band (bj, St.Stmt upd) ]) ->
      Some (bi, bj, Some init, upd)
  | St.Band (bi, St.Band (bj, St.Stmt upd)) -> Some (bi, bj, None, upd)
  | _ -> None

let match_gemv tree =
  let* bi, bj, init, upd = gemv_bodies tree in
  let* m = band_extent_0 bi in
  let* k = band_extent_0 bj in
  let iters = [ bi.St.iter; bj.St.iter ] in
  let* () = if upd.St.op = Ast.Add_assign then Some () else None in
  let* y_sig = signature upd.St.write ~iters in
  let* () = if y_sig = [ `Iter 0 ] then Some () else None in
  let* factors = mul_factors upd.St.rhs in
  let accesses = accesses_of factors in
  let* a, x_array =
    match accesses with
    | [ p; q ] -> (
        let sp = signature p ~iters and sq = signature q ~iters in
        let classify access s =
          match s with
          | Some [ `Iter 0; `Iter 1 ] -> Some (`A { array = access.Access.array; trans = false })
          | Some [ `Iter 1; `Iter 0 ] -> Some (`A { array = access.Access.array; trans = true })
          | Some [ `Iter 1 ] -> Some (`X access.Access.array)
          | _ -> None
        in
        match (classify p sp, classify q sq) with
        | Some (`A a), Some (`X x) | Some (`X x), Some (`A a) -> Some (a, x)
        | _ -> None)
    | _ -> None
  in
  let alpha = scalar_product (scalars_of factors) in
  let* beta =
    match init with
    | None -> Some (Ast.Float_lit 1.0)
    | Some init -> beta_of_init init upd.St.write
  in
  Some { a; x_array; y_array = upd.St.write.Access.array; m; k; alpha; beta }

(* ---------- 2-D convolution ---------- *)

let conv_bodies tree =
  match tree with
  | St.Band (bi, St.Band (bj, St.Seq [ St.Stmt init; St.Band (bp, St.Band (bq, St.Stmt upd)) ]))
    ->
      Some (bi, bj, bp, bq, Some init, upd)
  | St.Band (bi, St.Band (bj, St.Band (bp, St.Band (bq, St.Stmt upd)))) ->
      Some (bi, bj, bp, bq, None, upd)
  | _ -> None

let match_conv tree =
  let* bi, bj, bp, bq, init, upd = conv_bodies tree in
  let* out_h = band_extent_0 bi in
  let* out_w = band_extent_0 bj in
  let* ker_h = band_extent_0 bp in
  let* ker_w = band_extent_0 bq in
  let iters = [ bi.St.iter; bj.St.iter; bp.St.iter; bq.St.iter ] in
  let* () = if upd.St.op = Ast.Add_assign then Some () else None in
  let* out_sig = signature upd.St.write ~iters in
  let* () = if out_sig = [ `Iter 0; `Iter 1 ] then Some () else None in
  let* factors = mul_factors upd.St.rhs in
  let accesses = accesses_of factors in
  let is_shifted idx it_a it_b =
    Affine.coeff idx it_a = 1 && Affine.coeff idx it_b = 1 && Affine.constant idx = 0
    && List.length (Affine.vars idx) = 2
  in
  let* weights, input =
    match accesses with
    | [ p; q ] -> (
        let classify (access : Access.t) =
          match signature access ~iters with
          | Some [ `Iter 2; `Iter 3 ] -> Some (`W access.Access.array)
          | _ -> (
              match access.Access.indices with
              | [ i0; i1 ]
                when is_shifted i0 bi.St.iter bp.St.iter && is_shifted i1 bj.St.iter bq.St.iter
                ->
                  Some (`In access.Access.array)
              | _ -> None)
        in
        match (classify p, classify q) with
        | Some (`W w), Some (`In i) | Some (`In i), Some (`W w) -> Some (w, i)
        | _ -> None)
    | _ -> None
  in
  let alpha = scalar_product (scalars_of factors) in
  let* beta_zero =
    match init with
    | None -> Some false
    | Some init -> (
        match beta_of_init init upd.St.write with
        | Some (Ast.Float_lit 0.0) -> Some true
        | _ -> None)
  in
  Some
    {
      input;
      weights;
      output = upd.St.write.Access.array;
      out_h;
      out_w;
      ker_h;
      ker_w;
      alpha;
      accumulate = not beta_zero;
    }

let classify tree =
  match match_gemm tree with
  | Some g -> Some (Kgemm g)
  | None -> (
      match match_gemv tree with
      | Some g -> Some (Kgemv g)
      | None -> Option.map (fun c -> Kconv c) (match_conv tree))
