(** Computational-pattern detectors — the access-relation side of Loop
    Tactics. Each detector recognises one kernel family on a schedule
    subtree and extracts the BLAS-level parameters the offload pass
    needs (Listing 1: "Blas parameters are automatically collected or
    computed by Loop Tactics"). *)

module St = Tdo_poly.Schedule_tree
module Ast = Tdo_lang.Ast

type operand = { array : string; trans : bool }

type gemm = {
  c_array : string;
  a : operand;
  b : operand;
  m : int;
  n : int;
  k : int;
  iter_i : string;
  iter_j : string;
  iter_k : string;
  alpha : Ast.expr;
  beta : Ast.expr;
}
(** [C <- alpha*op(A)*op(B) + beta*C] over constant, zero-based loop
    extents [m x n x k]. *)

type gemv = {
  a : operand;
  x_array : string;
  y_array : string;
  m : int;
  k : int;
  alpha : Ast.expr;
  beta : Ast.expr;
}
(** [y <- alpha*op(A)*x + beta*y]. *)

type conv = {
  input : string;
  weights : string;
  output : string;
  out_h : int;
  out_w : int;
  ker_h : int;
  ker_w : int;
  alpha : Ast.expr;
  accumulate : bool;  (** no zero-init statement: add into the output *)
}
(** Single-channel valid 2-D convolution
    [out\[i\]\[j\] (+)= alpha * sum_pq W\[p\]\[q\] * In\[i+p\]\[j+q\]]. *)

type kernel = Kgemm of gemm | Kgemv of gemv | Kconv of conv

val match_gemm : St.t -> gemm option
val match_gemv : St.t -> gemv option
val match_conv : St.t -> conv option

val classify : St.t -> kernel option
(** First match among gemm, gemv, conv. *)
