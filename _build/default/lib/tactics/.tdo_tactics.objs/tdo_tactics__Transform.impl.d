lib/tactics/transform.ml: List Option String Tdo_lang Tdo_poly
