lib/tactics/matchers.mli: Tdo_poly
