lib/tactics/transform.mli: Tdo_poly
