lib/tactics/offload.ml: Hashtbl List Patterns Printf String Tdo_ir Tdo_lang Tdo_poly Transform
