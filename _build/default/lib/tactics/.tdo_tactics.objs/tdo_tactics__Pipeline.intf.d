lib/tactics/pipeline.mli: Offload Tdo_ir
