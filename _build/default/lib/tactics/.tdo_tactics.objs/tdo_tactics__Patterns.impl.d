lib/tactics/patterns.ml: List Option Tdo_lang Tdo_poly
