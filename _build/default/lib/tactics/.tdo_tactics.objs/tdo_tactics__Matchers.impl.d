lib/tactics/matchers.ml: List Option String Tdo_poly
