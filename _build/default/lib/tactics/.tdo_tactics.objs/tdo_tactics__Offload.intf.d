lib/tactics/offload.mli: Tdo_poly
