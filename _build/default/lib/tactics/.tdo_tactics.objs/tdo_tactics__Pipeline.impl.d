lib/tactics/pipeline.ml: Offload Tdo_poly
