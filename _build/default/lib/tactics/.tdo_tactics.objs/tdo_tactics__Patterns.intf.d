lib/tactics/patterns.mli: Tdo_lang Tdo_poly
