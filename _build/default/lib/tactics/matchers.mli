(** Declarative structural matchers over schedule trees — the Loop
    Tactics tree-matcher DSL (paper Section III, refs [18][19]).

    A pattern describes the shape of a subtree; matching returns the
    bands and statements bound to the pattern's capture names. Pattern
    detectors ({!Patterns}) are written on top of these combinators. *)

module St = Tdo_poly.Schedule_tree

type pattern

val band : ?capture:string -> pattern -> pattern
(** One loop dimension. *)

val sequence : pattern list -> pattern
(** Exactly these children, in order. *)

val stmt : ?capture:string -> unit -> pattern
(** A statement leaf. *)

val any : pattern
(** Any subtree. *)

val mark : string -> pattern -> pattern
(** A [Mark] node with the given name. *)

type capture = {
  bands : (string * St.band) list;
  stmts : (string * St.stmt_info) list;
}

val find : capture -> string -> St.band
(** Raises [Not_found]. *)

val find_stmt : capture -> string -> St.stmt_info

val matches : pattern -> St.t -> capture option
(** Structural match at the root of the tree. *)
