module Strings = Set.Make (String)
module Ir = Tdo_ir.Ir
module Ast = Tdo_lang.Ast

let call_arrays call =
  let of_ref (r : Ir.mat_ref) = r.Ir.array in
  match call with
  | Ir.Cim_init -> ([], [])
  | Ir.Cim_alloc { array } | Ir.Cim_free { array } -> ([ array ], [])
  | Ir.Cim_h2d { array } -> ([ array ], [])
  | Ir.Cim_d2h { array } -> ([ array ], [ array ])
  | Ir.Cim_gemm { a; b; c; _ } -> ([ of_ref a; of_ref b; of_ref c ], [ of_ref c ])
  | Ir.Cim_gemm_batched { batch; _ } ->
      ( List.concat_map (fun (a, b, c) -> [ of_ref a; of_ref b; of_ref c ]) batch,
        List.map (fun (_, _, c) -> of_ref c) batch )
  | Ir.Cim_im2col { src; dst; _ } -> ([ src; dst ], [ dst ])

let rec ir_arrays (stmt : Ir.stmt) =
  match stmt with
  | Ir.For { body; _ } ->
      List.fold_left
        (fun (r, w) s ->
          let r', w' = ir_arrays s in
          (Strings.union r r', Strings.union w w'))
        (Strings.empty, Strings.empty) body
  | Ir.Assign { lhs; op; rhs } ->
      let reads = ref Strings.empty in
      let rec visit = function
        | Ast.Index (a, idx) ->
            reads := Strings.add a !reads;
            List.iter visit idx
        | Ast.Binop (_, a, b) ->
            visit a;
            visit b
        | Ast.Neg e -> visit e
        | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _ -> ()
      in
      visit rhs;
      List.iter visit lhs.Ast.indices;
      let reads =
        if op = Ast.Set then !reads else Strings.add lhs.Ast.base !reads
      in
      (reads, Strings.singleton lhs.Ast.base)
  | Ir.Decl_scalar _ | Ir.Decl_array _ | Ir.Roi_begin | Ir.Roi_end ->
      (Strings.empty, Strings.empty)
  | Ir.Call call ->
      let reads, writes = call_arrays call in
      (Strings.of_list reads, Strings.of_list writes)

let rec accesses tree =
  match tree with
  | Schedule_tree.Band (_, child) | Schedule_tree.Mark (_, child) -> accesses child
  | Schedule_tree.Seq children ->
      List.fold_left
        (fun (r, w) child ->
          let r', w' = accesses child in
          (Strings.union r r', Strings.union w w'))
        (Strings.empty, Strings.empty) children
  | Schedule_tree.Stmt s ->
      let reads =
        List.fold_left
          (fun acc (a : Access.t) -> Strings.add a.Access.array acc)
          Strings.empty s.Schedule_tree.reads
      in
      let reads =
        if s.Schedule_tree.op = Ast.Set then reads
        else Strings.add s.Schedule_tree.write.Access.array reads
      in
      (reads, Strings.singleton s.Schedule_tree.write.Access.array)
  | Schedule_tree.Code stmts ->
      List.fold_left
        (fun (r, w) s ->
          let r', w' = ir_arrays s in
          (Strings.union r r', Strings.union w w'))
        (Strings.empty, Strings.empty) stmts

let arrays_read tree = fst (accesses tree)
let arrays_written tree = snd (accesses tree)

(* ---------- region-level refinement ---------- *)

(* inclusive iterator intervals of a band stack, when all bounds are
   constant (step handled conservatively by the closed interval) *)
let band_extents bands =
  List.fold_left
    (fun acc (b : Schedule_tree.band) ->
      match (acc, Affine.is_constant b.Schedule_tree.lo, Affine.is_constant b.Schedule_tree.hi)
      with
      | Some acc, Some lo, Some hi when hi > lo ->
          Some ((b.Schedule_tree.iter, (lo, hi - 1)) :: acc)
      | _ -> None)
    (Some []) bands

let access_regions tree ~writes =
  let table : (string, Domain.box option list ref) Hashtbl.t = Hashtbl.create 8 in
  let add array region =
    match Hashtbl.find_opt table array with
    | Some regions -> regions := region :: !regions
    | None -> Hashtbl.add table array (ref [ region ])
  in
  let stmt_accesses (s : Schedule_tree.stmt_info) =
    if writes then [ s.Schedule_tree.write ]
    else
      s.Schedule_tree.reads
      @
      if s.Schedule_tree.op = Ast.Set then [] else [ s.Schedule_tree.write ]
  in
  List.iter
    (fun (bands, s) ->
      let extents = band_extents bands in
      List.iter
        (fun (a : Access.t) ->
          let region =
            Option.bind extents (fun extents -> Access.region a ~extents)
          in
          add a.Access.array region)
        (stmt_accesses s))
    (Schedule_tree.stmts_with_context tree);
  (* Code subtrees: unknown regions for every array they mention *)
  let rec code_arrays = function
    | Schedule_tree.Code stmts ->
        List.iter
          (fun stmt ->
            let r, w = ir_arrays stmt in
            let relevant = if writes then w else r in
            Strings.iter (fun a -> add a None) relevant)
          stmts
    | Schedule_tree.Band (_, child) | Schedule_tree.Mark (_, child) -> code_arrays child
    | Schedule_tree.Seq children -> List.iter code_arrays children
    | Schedule_tree.Stmt _ -> ()
  in
  code_arrays tree;
  Hashtbl.fold (fun array regions acc -> (array, !regions) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Can two sets of per-array regions be proven cell-disjoint? *)
let regions_disjoint xs ys =
  let all_known regions =
    let rec collect acc = function
      | [] -> Some (List.rev acc)
      | Some box :: rest -> collect (box :: acc) rest
      | None :: _ -> None
    in
    collect [] regions
  in
  match (all_known xs, all_known ys) with
  | Some xs, Some ys ->
      List.for_all
        (fun bx ->
          List.for_all
            (fun by ->
              Domain.box_rank bx <> Domain.box_rank by
              || Domain.inter_box bx by = None)
            ys)
        xs
  | None, _ | _, None -> false

let independent x y =
  let wx = arrays_written x and rx = arrays_read x in
  let wy = arrays_written y and ry = arrays_read y in
  let name_conflicts =
    Strings.union
      (Strings.inter wx (Strings.union ry wy))
      (Strings.inter wy rx)
  in
  Strings.is_empty name_conflicts
  ||
  (* refine each name conflict with access regions *)
  let region_of tree ~writes =
    let table = access_regions tree ~writes in
    fun array -> Option.value ~default:[] (List.assoc_opt array table)
  in
  let wx_r = region_of x ~writes:true
  and rx_r = region_of x ~writes:false
  and wy_r = region_of y ~writes:true
  and ry_r = region_of y ~writes:false in
  Strings.for_all
    (fun array ->
      regions_disjoint (wx_r array) (ry_r array @ wy_r array)
      && regions_disjoint (wy_r array) (rx_r array))
    name_conflicts

let may_interchange b1 b2 tree =
  let iters = [ b1.Schedule_tree.iter; b2.Schedule_tree.iter ] in
  let stmt_ok (s : Schedule_tree.stmt_info) =
    match s.Schedule_tree.op with
    | Ast.Add_assign | Ast.Sub_assign ->
        (* pure accumulation: iteration order along the swapped bands
           does not change the final sums (floating-point reassociation
           accepted, as in -ffast-math / Polly's semantics here) *)
        true
    | Ast.Set | Ast.Mul_assign ->
        (* the write must not be indexed by both swapped iterators in a
           way that could alias across the swap: requiring the write's
           subscripts to use at most plain distinct iterators keeps
           instances writing distinct cells, so order is irrelevant *)
        let subscript_vars =
          List.concat_map Affine.vars s.Schedule_tree.write.Access.indices
        in
        List.for_all
          (fun it ->
            not (List.mem it subscript_vars)
            || List.exists
                 (fun idx -> Affine.coeff idx it = 1 && List.length (Affine.vars idx) = 1)
                 s.Schedule_tree.write.Access.indices)
          iters
  in
  List.for_all stmt_ok (Schedule_tree.stmts tree)
