type box = (int * int) array

let box bounds =
  if bounds = [] then invalid_arg "Domain.box: rank must be positive";
  if List.exists (fun (lo, hi) -> lo > hi) bounds then None else Some (Array.of_list bounds)

let box_exn bounds =
  match box bounds with
  | Some b -> b
  | None -> invalid_arg "Domain.box_exn: empty box"

let box_rank b = Array.length b
let box_bounds b = Array.to_list b

type t = { rank : int; boxes : box list }

let empty ~rank =
  if rank <= 0 then invalid_arg "Domain.empty: rank must be positive";
  { rank; boxes = [] }

let of_box b = { rank = box_rank b; boxes = [ b ] }

let of_boxes ~rank boxes =
  List.iter
    (fun b -> if box_rank b <> rank then invalid_arg "Domain.of_boxes: rank mismatch")
    boxes;
  if rank <= 0 then invalid_arg "Domain.of_boxes: rank must be positive";
  { rank; boxes }

let rank t = t.rank
let is_empty t = t.boxes = []

let check_ranks a b what =
  if a.rank <> b.rank then invalid_arg ("Domain." ^ what ^ ": rank mismatch")

let union a b =
  check_ranks a b "union";
  { a with boxes = a.boxes @ b.boxes }

let inter_box (a : box) (b : box) =
  if box_rank a <> box_rank b then invalid_arg "Domain.inter_box: rank mismatch";
  let bounds =
    Array.map2 (fun (lo1, hi1) (lo2, hi2) -> (max lo1 lo2, min hi1 hi2)) a b
  in
  if Array.exists (fun (lo, hi) -> lo > hi) bounds then None else Some bounds

let inter a b =
  check_ranks a b "inter";
  let boxes =
    List.concat_map (fun ba -> List.filter_map (fun bb -> inter_box ba bb) b.boxes) a.boxes
  in
  { rank = a.rank; boxes }

let disjoint a b = is_empty (inter a b)

let contains t point =
  if List.length point <> t.rank then invalid_arg "Domain.contains: rank mismatch";
  let point = Array.of_list point in
  List.exists
    (fun b -> Array.for_all2 (fun (lo, hi) p -> lo <= p && p <= hi) b point)
    t.boxes

let box_cardinal b = Array.fold_left (fun acc (lo, hi) -> acc * (hi - lo + 1)) 1 b

(* inclusion-exclusion over the union; fine for the few-box domains this
   flow builds *)
let cardinal t =
  let rec subsets = function
    | [] -> [ [] ]
    | b :: rest ->
        let without = subsets rest in
        without @ List.map (fun s -> b :: s) without
  in
  List.fold_left
    (fun acc subset ->
      match subset with
      | [] -> acc
      | first :: rest ->
          let inter_all =
            List.fold_left
              (fun acc b -> Option.bind acc (fun i -> inter_box i b))
              (Some first) rest
          in
          let sign = if List.length subset mod 2 = 1 then 1 else -1 in
          acc + (sign * match inter_all with Some b -> box_cardinal b | None -> 0))
    0 (subsets t.boxes)

let pp ppf t =
  if is_empty t then Format.fprintf ppf "{}"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " u ")
      (fun ppf b ->
        Format.fprintf ppf "[%s]"
          (String.concat ", "
             (List.map (fun (lo, hi) -> Printf.sprintf "%d..%d" lo hi) (box_bounds b))))
      ppf t.boxes
