module Ast = Tdo_lang.Ast

type band = { iter : string; lo : Affine.t; hi : Affine.t; step : int }

type stmt_info = {
  sid : int;
  write : Access.t;
  op : Ast.assign_op;
  rhs : Ast.expr;
  reads : Access.t list;
}

type t =
  | Band of band * t
  | Seq of t list
  | Stmt of stmt_info
  | Mark of string * t
  | Code of Tdo_ir.Ir.stmt list

let rec pp ppf = function
  | Band (b, child) ->
      Format.fprintf ppf "@[<v 2>band %s in [%a, %a) step %d@,%a@]" b.iter Affine.pp b.lo
        Affine.pp b.hi b.step pp child
  | Seq children ->
      Format.fprintf ppf "@[<v 2>seq@,%a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp)
        children
  | Stmt s ->
      Format.fprintf ppf "S%d: %a %s ..." s.sid Access.pp s.write
        (match s.op with
        | Ast.Set -> "="
        | Ast.Add_assign -> "+="
        | Ast.Sub_assign -> "-="
        | Ast.Mul_assign -> "*=")
  | Mark (name, child) -> Format.fprintf ppf "@[<v 2>mark %S@,%a@]" name pp child
  | Code stmts -> Format.fprintf ppf "code (%d lowered statements)" (List.length stmts)

let rec stmts = function
  | Band (_, child) -> stmts child
  | Seq children -> List.concat_map stmts children
  | Stmt s -> [ s ]
  | Mark (_, child) -> stmts child
  | Code _ -> []

let stmts_with_context tree =
  let rec walk bands = function
    | Band (b, child) -> walk (b :: bands) child
    | Seq children -> List.concat_map (walk bands) children
    | Stmt s -> [ (List.rev bands, s) ]
    | Mark (_, child) -> walk bands child
    | Code _ -> []
  in
  walk [] tree

let rec map_marked ~name ~f = function
  | Mark (n, child) when String.equal n name -> f child
  | Mark (n, child) -> Mark (n, map_marked ~name ~f child)
  | Band (b, child) -> Band (b, map_marked ~name ~f child)
  | Seq children -> Seq (List.map (map_marked ~name ~f) children)
  | (Stmt _ | Code _) as leaf -> leaf

let band_extent b =
  match (Affine.is_constant b.lo, Affine.is_constant b.hi) with
  | Some lo, Some hi when hi >= lo -> Some ((hi - lo + b.step - 1) / b.step)
  | _ -> None

let rec contains_code = function
  | Code _ -> true
  | Band (_, child) | Mark (_, child) -> contains_code child
  | Seq children -> List.exists contains_code children
  | Stmt _ -> false
