module Ir = Tdo_ir.Ir
module Ast = Tdo_lang.Ast

let rec to_ir (tree : Schedule_tree.t) : Ir.stmt list =
  match tree with
  | Schedule_tree.Band (b, child) ->
      [
        Ir.For
          {
            var = b.Schedule_tree.iter;
            lo = Affine.to_expr b.Schedule_tree.lo;
            hi = Affine.to_expr b.Schedule_tree.hi;
            step = b.Schedule_tree.step;
            body = to_ir child;
          };
      ]
  | Schedule_tree.Seq children -> List.concat_map to_ir children
  | Schedule_tree.Stmt s ->
      [
        Ir.Assign
          {
            lhs =
              {
                Ast.base = s.Schedule_tree.write.Access.array;
                indices = List.map Affine.to_expr s.Schedule_tree.write.Access.indices;
              };
            op = s.Schedule_tree.op;
            rhs = s.Schedule_tree.rhs;
          };
      ]
  | Schedule_tree.Mark (_, child) -> to_ir child
  | Schedule_tree.Code stmts -> stmts

let func_with_body (f : Ir.func) tree =
  let lowered = to_ir tree in
  { f with Ir.body = (Ir.Roi_begin :: lowered) @ [ Ir.Roi_end ] }
