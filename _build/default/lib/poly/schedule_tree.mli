(** Schedule trees (Polly/isl style, specialised to single-dimensional
    bands).

    The execution order of every statement instance is encoded by the
    parent-child relation: a [Band] node is one loop dimension, [Seq]
    orders its children, [Stmt] is a leaf statement, [Mark] carries an
    optimiser annotation, and [Code] is an opaque escape hatch holding
    already-lowered IR (the offload pass replaces matched subtrees with
    [Code] nodes full of runtime calls). *)

module Ast = Tdo_lang.Ast

type band = { iter : string; lo : Affine.t; hi : Affine.t; step : int }

type stmt_info = {
  sid : int;  (** unique within a tree *)
  write : Access.t;
  op : Ast.assign_op;
  rhs : Ast.expr;
  reads : Access.t list;
}

type t =
  | Band of band * t
  | Seq of t list
  | Stmt of stmt_info
  | Mark of string * t
  | Code of Tdo_ir.Ir.stmt list

val pp : Format.formatter -> t -> unit

val stmts : t -> stmt_info list
(** All statement leaves, in execution order. *)

val stmts_with_context : t -> (band list * stmt_info) list
(** Each statement with its enclosing bands, outermost first. *)

val map_marked : name:string -> f:(t -> t) -> t -> t
(** Rewrite every [Mark (name, subtree)] node with [f subtree]. *)

val band_extent : band -> int option
(** Trip count when both bounds are constant and the band is
    normalised ([lo <= hi]); counts full steps. *)

val contains_code : t -> bool
