(** Integer box domains — the restricted integer-set library of this
    flow (the role isl plays under Polly).

    A domain is a finite union of axis-aligned boxes with inclusive
    bounds. Exact for the rectangular iteration spaces and affine
    accesses of the PolyBench kernels; used by {!Deps} to prove two
    regions touch disjoint parts of an array. *)

type box
(** Non-empty axis-aligned box; all boxes of a domain share one rank. *)

val box : (int * int) list -> box option
(** [box \[(lo0, hi0); (lo1, hi1); ...\]] with inclusive bounds; [None]
    when some [lo > hi] (empty). Raises [Invalid_argument] on rank 0. *)

val box_exn : (int * int) list -> box
(** Like {!box} but raises [Invalid_argument] when empty. *)

val box_rank : box -> int
val box_bounds : box -> (int * int) list

type t
(** A union of same-rank boxes (possibly empty). *)

val empty : rank:int -> t
val of_box : box -> t
val of_boxes : rank:int -> box list -> t
val rank : t -> int
val is_empty : t -> bool

val union : t -> t -> t
(** Raises [Invalid_argument] on rank mismatch. *)

val inter_box : box -> box -> box option
val inter : t -> t -> t
val disjoint : t -> t -> bool

val contains : t -> int list -> bool
(** Membership of a point. Raises [Invalid_argument] on rank
    mismatch. *)

val cardinal : t -> int
(** Number of integer points (inclusion-exclusion over at most a
    handful of boxes; intended for the small unions this flow
    produces). *)

val pp : Format.formatter -> t -> unit
