(** Schedule tree -> IR lowering (Polly's AST generation step).

    The inverse of {!Scop_detect}: bands become [for] loops, statement
    leaves become assignments, and [Code] escape nodes (inserted by the
    offload pass) pass through verbatim. *)

val to_ir : Schedule_tree.t -> Tdo_ir.Ir.stmt list

val func_with_body :
  Tdo_ir.Ir.func -> Schedule_tree.t -> Tdo_ir.Ir.func
(** Replace the region between the function's ROI markers with the
    lowering of the tree (markers preserved). *)
