module Ir = Tdo_ir.Ir
module Ast = Tdo_lang.Ast

let ( let* ) = Result.bind

let detect body =
  let next_sid = ref 0 in
  let rec tree_of_stmt (stmt : Ir.stmt) =
    match stmt with
    | Ir.For { var; lo; hi; step; body } -> (
        match (Affine.of_expr lo, Affine.of_expr hi) with
        | Some lo, Some hi ->
            let* child = tree_of_body body in
            Ok (Schedule_tree.Band ({ Schedule_tree.iter = var; lo; hi; step }, child))
        | None, _ | _, None ->
            Error (Printf.sprintf "non-affine bound of loop '%s'" var))
    | Ir.Assign { lhs; op; rhs } -> (
        match Access.of_lvalue lhs with
        | None -> Error (Printf.sprintf "non-affine subscript writing '%s'" lhs.Ast.base)
        | Some write -> (
            if lhs.Ast.indices = [] then
              Error (Printf.sprintf "scalar write to '%s'" lhs.Ast.base)
            else
              match Access.reads_of_expr rhs with
              | None -> Error "non-affine subscript in a read"
              | Some reads ->
                  let sid = !next_sid in
                  incr next_sid;
                  Ok (Schedule_tree.Stmt { Schedule_tree.sid; write; op; rhs; reads })))
    | Ir.Decl_scalar { name; _ } ->
        Error (Printf.sprintf "scalar declaration '%s' inside the region" name)
    | Ir.Decl_array { name; _ } ->
        Error (Printf.sprintf "array declaration '%s' inside the region" name)
    | Ir.Call _ -> Error "runtime call inside the region"
    | Ir.Roi_begin | Ir.Roi_end -> Error "ROI marker inside the region"
  and tree_of_body body =
    let* children =
      List.fold_left
        (fun acc stmt ->
          let* acc = acc in
          let* tree = tree_of_stmt stmt in
          Ok (tree :: acc))
        (Ok []) body
    in
    match List.rev children with
    | [ single ] -> Ok single
    | children -> Ok (Schedule_tree.Seq children)
  in
  (* strip ROI markers at the edges *)
  let body =
    List.filter (function Ir.Roi_begin | Ir.Roi_end -> false | _ -> true) body
  in
  tree_of_body body

let detect_func (f : Ir.func) = detect f.Ir.body
