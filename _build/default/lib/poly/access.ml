module Ast = Tdo_lang.Ast

type t = { array : string; indices : Affine.t list }

let of_indices array indices =
  let rec map_all acc = function
    | [] -> Some (List.rev acc)
    | e :: rest -> (
        match Affine.of_expr e with
        | None -> None
        | Some a -> map_all (a :: acc) rest)
  in
  Option.map (fun indices -> { array; indices }) (map_all [] indices)

let of_lvalue (lv : Ast.lvalue) = of_indices lv.Ast.base lv.Ast.indices

let reads_of_expr expr =
  let exception Not_affine in
  let acc = ref [] in
  let rec visit = function
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _ -> ()
    | Ast.Index (array, indices) -> (
        match of_indices array indices with
        | None -> raise Not_affine
        | Some access -> acc := access :: !acc)
    | Ast.Binop (_, a, b) ->
        visit a;
        visit b
    | Ast.Neg e -> visit e
  in
  match visit expr with
  | () -> Some (List.rev !acc)
  | exception Not_affine -> None

let equal a b =
  String.equal a.array b.array
  && List.length a.indices = List.length b.indices
  && List.for_all2 Affine.equal a.indices b.indices

let pp ppf a =
  Format.fprintf ppf "%s" a.array;
  List.iter (fun idx -> Format.fprintf ppf "[%a]" Affine.pp idx) a.indices

let region a ~extents =
  let index_bounds idx =
    let base = Affine.constant idx in
    List.fold_left
      (fun acc v ->
        match (acc, List.assoc_opt v extents) with
        | None, _ | _, None -> None
        | Some (lo, hi), Some (vlo, vhi) ->
            let c = Affine.coeff idx v in
            if c >= 0 then Some (lo + (c * vlo), hi + (c * vhi))
            else Some (lo + (c * vhi), hi + (c * vlo)))
      (Some (base, base))
      (Affine.vars idx)
  in
  let rec all acc = function
    | [] -> Domain.box (List.rev acc)
    | idx :: rest -> (
        match index_bounds idx with
        | None -> None
        | Some bounds -> all (bounds :: acc) rest)
  in
  if a.indices = [] then None else all [] a.indices

let index_signature a ~iters =
  let classify idx =
    let used = List.filter (fun v -> Affine.coeff idx v <> 0) (Affine.vars idx) in
    match used with
    | [] -> Some `Other
    | [ v ] ->
        if Affine.coeff idx v = 1 && Affine.constant idx = 0 then
          (* exactly one iterator with unit coefficient *)
          Option.map (fun p -> `Iter p)
            (List.find_index (String.equal v) iters)
        else None
    | _ :: _ :: _ -> None
  in
  let rec all acc = function
    | [] -> Some (List.rev acc)
    | idx :: rest -> (
        match classify idx with None -> None | Some c -> all (c :: acc) rest)
  in
  all [] a.indices
