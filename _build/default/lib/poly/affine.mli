(** Affine (linear + constant) integer expressions over loop iterators.

    The restricted polyhedral model of this flow: array subscripts and
    loop bounds must be affine for a region to become a SCoP, exactly
    as in Polly. *)

module Ast = Tdo_lang.Ast

type t
(** Canonical form: sorted variable terms with non-zero coefficients
    plus a constant. *)

val const : int -> t
val var : string -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t

val of_expr : Ast.expr -> t option
(** Affine interpretation of an integer AST expression: literals,
    variables, [+], [-], unary minus, and multiplication where at least
    one side is constant. [None] for anything else (e.g. [i*j]). *)

val to_expr : t -> Ast.expr
(** Lower back to an AST expression (canonical sum form). *)

val coeff : t -> string -> int
val constant : t -> int
val vars : t -> string list
(** Sorted names with non-zero coefficients. *)

val is_constant : t -> int option
val equal : t -> t -> bool
val subst : t -> string -> t -> t
(** [subst f x g] replaces [x] by [g] in [f]. *)

val pp : Format.formatter -> t -> unit
