(** SCoP detection: decide whether a region of IR is a static control
    part — affine loop bounds, affine array subscripts, no scalar
    side-effects — and build its schedule tree (paper Section III-A:
    "we rely on the polyhedral optimizer Polly to detect, extract and
    model compute kernels"). *)

val detect : Tdo_ir.Ir.stmt list -> (Schedule_tree.t, string) result
(** The region is everything between the ROI markers (markers
    themselves excluded, and permitted at the region's edges). [Error]
    explains the first obstruction: non-affine bound or subscript,
    scalar assignment, declarations, or pre-existing runtime calls. *)

val detect_func : Tdo_ir.Ir.func -> (Schedule_tree.t, string) result
(** Apply {!detect} to the function body. *)
