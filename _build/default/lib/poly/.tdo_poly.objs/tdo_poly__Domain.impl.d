lib/poly/domain.ml: Array Format List Option Printf String
