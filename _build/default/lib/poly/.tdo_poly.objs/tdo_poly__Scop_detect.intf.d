lib/poly/scop_detect.mli: Schedule_tree Tdo_ir
