lib/poly/codegen.mli: Schedule_tree Tdo_ir
