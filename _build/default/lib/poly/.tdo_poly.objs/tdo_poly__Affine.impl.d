lib/poly/affine.ml: Format List Map Option String Tdo_lang
