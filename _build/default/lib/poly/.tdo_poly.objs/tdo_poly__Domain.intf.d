lib/poly/domain.mli: Format
