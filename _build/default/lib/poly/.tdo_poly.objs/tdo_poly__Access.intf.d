lib/poly/access.mli: Affine Domain Format Tdo_lang
