lib/poly/schedule_tree.ml: Access Affine Format List String Tdo_ir Tdo_lang
