lib/poly/deps.ml: Access Affine Domain Hashtbl List Option Schedule_tree Set String Tdo_ir Tdo_lang
