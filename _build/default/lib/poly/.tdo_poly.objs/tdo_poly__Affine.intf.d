lib/poly/affine.mli: Format Tdo_lang
