lib/poly/scop_detect.ml: Access Affine List Printf Result Schedule_tree Tdo_ir Tdo_lang
