lib/poly/access.ml: Affine Domain Format List Option String Tdo_lang
