lib/poly/schedule_tree.mli: Access Affine Format Tdo_ir Tdo_lang
