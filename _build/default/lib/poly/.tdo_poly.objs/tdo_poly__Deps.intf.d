lib/poly/deps.mli: Domain Schedule_tree Set
