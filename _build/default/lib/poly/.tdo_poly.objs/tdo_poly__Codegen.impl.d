lib/poly/codegen.ml: Access Affine List Schedule_tree Tdo_ir Tdo_lang
