(** Array access relations: which array, with which affine subscripts. *)

module Ast = Tdo_lang.Ast

type t = { array : string; indices : Affine.t list }

val of_lvalue : Ast.lvalue -> t option
(** [None] when a subscript is not affine. *)

val reads_of_expr : Ast.expr -> t list option
(** All array reads in an expression, left to right. [None] when any
    subscript is non-affine. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val region : t -> extents:(string * (int * int)) list -> Domain.box option
(** Bounding box of the cells this access can touch when each iterator
    [v] ranges over the inclusive interval [extents v]. [None] when an
    index involves a variable without an extent. The box is exact for
    single-iterator indices and a (safe) superset in general. *)

val index_signature : t -> iters:string list -> [ `Iter of int | `Other ] list option
(** Classify each subscript against an iterator list: [`Iter p] when the
    subscript is exactly the [p]-th iterator (coefficient 1, nothing
    else); [None] if some subscript is neither a plain iterator nor
    iterator-free. Used by the GEMM/GEMV pattern matchers. *)
