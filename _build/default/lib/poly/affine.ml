module Ast = Tdo_lang.Ast
module Terms = Map.Make (String)

type t = { const : int; terms : int Terms.t }
(** invariant: no zero coefficients in [terms] *)

let normalize terms = Terms.filter (fun _ c -> c <> 0) terms

let const c = { const = c; terms = Terms.empty }
let var name = { const = 0; terms = Terms.singleton name 1 }

let add a b =
  {
    const = a.const + b.const;
    terms =
      normalize
        (Terms.union (fun _ ca cb -> Some (ca + cb)) a.terms b.terms);
  }

let scale k a =
  if k = 0 then const 0
  else { const = k * a.const; terms = Terms.map (fun c -> k * c) a.terms }

let neg a = scale (-1) a
let sub a b = add a (neg b)

let rec of_expr : Ast.expr -> t option = function
  | Ast.Int_lit n -> Some (const n)
  | Ast.Float_lit _ -> None
  | Ast.Var name -> Some (var name)
  | Ast.Index _ -> None
  | Ast.Neg e -> Option.map neg (of_expr e)
  | Ast.Binop (Ast.Add, a, b) -> (
      match (of_expr a, of_expr b) with Some a, Some b -> Some (add a b) | _ -> None)
  | Ast.Binop (Ast.Sub, a, b) -> (
      match (of_expr a, of_expr b) with Some a, Some b -> Some (sub a b) | _ -> None)
  | Ast.Binop (Ast.Mul, a, b) -> (
      match (of_expr a, of_expr b) with
      | Some a, Some b -> (
          match (is_constant a, is_constant b) with
          | Some k, _ -> Some (scale k b)
          | _, Some k -> Some (scale k a)
          | None, None -> None)
      | _ -> None)
  | Ast.Binop (Ast.Div, _, _) -> None

and is_constant a = if Terms.is_empty a.terms then Some a.const else None

let to_expr a =
  let term name c acc =
    let var_expr = Ast.Var name in
    let term_expr =
      if c = 1 then var_expr else Ast.Binop (Ast.Mul, Ast.Int_lit c, var_expr)
    in
    match acc with None -> Some term_expr | Some e -> Some (Ast.Binop (Ast.Add, e, term_expr))
  in
  let body = Terms.fold term a.terms None in
  match (body, a.const) with
  | None, c -> Ast.Int_lit c
  | Some e, 0 -> e
  | Some e, c when c > 0 -> Ast.Binop (Ast.Add, e, Ast.Int_lit c)
  | Some e, c -> Ast.Binop (Ast.Sub, e, Ast.Int_lit (-c))

let coeff a name = Option.value ~default:0 (Terms.find_opt name a.terms)
let constant a = a.const
let vars a = List.map fst (Terms.bindings a.terms)
let equal a b = a.const = b.const && Terms.equal ( = ) a.terms b.terms

let subst a name g =
  match Terms.find_opt name a.terms with
  | None -> a
  | Some c -> add { a with terms = Terms.remove name a.terms } (scale c g)

let pp ppf a =
  let first = ref true in
  Terms.iter
    (fun name c ->
      if !first then begin
        if c = 1 then Format.fprintf ppf "%s" name
        else Format.fprintf ppf "%d%s" c name;
        first := false
      end
      else if c >= 0 then Format.fprintf ppf " + %d%s" c name
      else Format.fprintf ppf " - %d%s" (-c) name)
    a.terms;
  if !first then Format.fprintf ppf "%d" a.const
  else if a.const > 0 then Format.fprintf ppf " + %d" a.const
  else if a.const < 0 then Format.fprintf ppf " - %d" (-a.const)
