(* PolyBench sweep: the paper's Fig. 6 across problem sizes.

   Runs the seven kernels of the evaluation (2mm, 3mm, gemm, conv,
   gesummv, bicg, mvt) host-only and with TDO-CIM, at three dataset
   sizes, and prints the energy/EDP tables. Shows the crossover the
   paper describes: GEMM-like kernels win by growing factors as the
   problem grows; GEMV-like kernels stay below 1x because their compute
   intensity (MACs per crossbar write) is ~1.

   The datasets fan out over Tdo_util.Pool (every kernel run takes its
   PRNG seed explicitly, so the parallel results are bit-identical to a
   sequential sweep; set TDO_SEQUENTIAL=1 to check).

   Run with: dune exec examples/polybench_sweep.exe *)

module E = Tdo_cim.Experiments
module Dataset = Tdo_polybench.Dataset
module Pool = Tdo_util.Pool

let () =
  print_endline "=== PolyBench/C sweep (Fig. 6) ===";
  let datasets = [ Dataset.Small; Dataset.Medium; Dataset.Large ] in
  let results = Pool.parallel_map (fun dataset -> E.fig6 ~dataset ()) datasets in
  List.iter2
    (fun dataset result ->
      Printf.printf "\n--- dataset %s (n = %d) ---\n" (Dataset.to_string dataset)
        (Dataset.n dataset);
      E.print_fig6_results ~n:(Dataset.n dataset) result)
    datasets results
